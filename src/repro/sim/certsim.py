"""Certificate ecosystem simulation.

Generates the three certificate streams the paper observes:

1. **The global stream** — day-by-day issuance for the whole ``.ru``/``.рф``
   population, scaled to the simulated population size.  Per-CA market
   shares, issuance stops after the invasion, brand-CN "leakage" dots, and
   revocation rates are all configured per CA.
2. **The sanctioned stream** — absolute (unscaled) issuance for the 107
   sanctioned domains, including the DigiCert and Sectigo full revocations.
3. **The Russian Trusted Root CA stream** — certificates that are *never*
   CT-logged and only observable through active scans.

Everything lands in real substrate objects: CAs sign, CT logs build Merkle
trees, CRLs fill, and a serving view feeds the scanner.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ctlog.log import CtLog
from ..errors import ScenarioError
from ..pki.ca import CaPolicy, CertificateAuthority
from ..pki.certificate import Certificate
from ..pki.crl import RevocationReason
from ..pki.store import CertificateStore
from ..rng import derive_rng
from ..timeline import DateLike, as_date, iter_days
from .world import World

__all__ = ["CaSpec", "SanctionedIssuanceSpec", "CertSimConfig", "PkiBundle", "simulate_pki"]

RUSSIAN_CA_ORG = "Russian Trusted Root CA"


class CaSpec:
    """Behavioural parameters for one certificate authority."""

    def __init__(
        self,
        key: str,
        organization: str,
        country: str,
        share: float,
        validity_days: int = 365,
        brands: Sequence[str] = (),
        stop_date: Optional[DateLike] = None,
        leak_days: int = 0,
        leak_rate: float = 0.0,
        revocation_rate: float = 0.0,
        share_multiplier_post_conflict: float = 1.0,
        ct_logging: bool = True,
    ) -> None:
        if share < 0:
            raise ScenarioError(f"negative share for CA {key}")
        self.key = key
        self.organization = organization
        self.country = country
        #: Pre-conflict fraction of daily issuance volume.
        self.share = share
        self.validity_days = validity_days
        self.brands = tuple(brands) or (f"{organization} CA",)
        self.stop_date = as_date(stop_date) if stop_date is not None else None
        #: After stopping, stray "brand leakage" certs for this many days...
        self.leak_days = leak_days
        #: ...each day independently with this probability.
        self.leak_rate = leak_rate
        self.revocation_rate = revocation_rate
        #: Relative share change once the conflict starts (GlobalSign grows).
        self.share_multiplier_post_conflict = share_multiplier_post_conflict
        self.ct_logging = ct_logging

    def active_weight(self, date: _dt.date, conflict_start: _dt.date) -> float:
        """Issuance weight on ``date`` (0 when stopped)."""
        if self.stop_date is not None and date >= self.stop_date:
            return 0.0
        if date >= conflict_start:
            return self.share * self.share_multiplier_post_conflict
        return self.share

    def leaks_on(self, date: _dt.date) -> bool:
        """True when ``date`` falls inside the post-stop leakage window."""
        if self.stop_date is None or self.leak_days <= 0:
            return False
        return self.stop_date <= date < self.stop_date + _dt.timedelta(self.leak_days)


class SanctionedIssuanceSpec:
    """Absolute issuance/revocation targets for one CA over sanctioned domains."""

    def __init__(
        self,
        ca_key: str,
        issued: int,
        revoked: int,
        revocation_window: Tuple[DateLike, DateLike],
        issue_until: Optional[DateLike] = None,
    ) -> None:
        if revoked > issued:
            raise ScenarioError(f"{ca_key}: revoked {revoked} > issued {issued}")
        self.ca_key = ca_key
        self.issued = issued
        self.revoked = revoked
        self.revocation_window = (
            as_date(revocation_window[0]),
            as_date(revocation_window[1]),
        )
        self.issue_until = as_date(issue_until) if issue_until else None


class CertSimConfig:
    """Top-level knobs for the certificate simulation."""

    def __init__(
        self,
        seed: int,
        scale_factor: float,
        ca_specs: Sequence[CaSpec],
        sanctioned_specs: Sequence[SanctionedIssuanceSpec],
        start: DateLike = _dt.date(2021, 11, 15),
        end: DateLike = _dt.date(2022, 5, 15),
        conflict_start: DateLike = _dt.date(2022, 2, 24),
        daily_volume_pre_conflict: float = 130_000.0,
        daily_volume_post_conflict: float = 115_000.0,
        russian_ca_cert_count: int = 170,
        russian_ca_sanctioned_count: int = 36,
        russian_ca_rf_count: int = 2,
        russian_ca_external_count: int = 38,
        russian_ca_start: DateLike = _dt.date(2022, 3, 2),
        russian_ca_end: DateLike = _dt.date(2022, 4, 8),
    ) -> None:
        if scale_factor <= 0:
            raise ScenarioError(f"scale_factor must be positive: {scale_factor}")
        self.seed = seed
        self.scale_factor = scale_factor
        self.ca_specs = list(ca_specs)
        self.sanctioned_specs = list(sanctioned_specs)
        self.start = as_date(start)
        self.end = as_date(end)
        self.conflict_start = as_date(conflict_start)
        self.daily_volume_pre_conflict = daily_volume_pre_conflict
        self.daily_volume_post_conflict = daily_volume_post_conflict
        self.russian_ca_cert_count = russian_ca_cert_count
        self.russian_ca_sanctioned_count = russian_ca_sanctioned_count
        self.russian_ca_rf_count = russian_ca_rf_count
        self.russian_ca_external_count = russian_ca_external_count
        self.russian_ca_start = as_date(russian_ca_start)
        self.russian_ca_end = as_date(russian_ca_end)


class PkiBundle:
    """Everything the PKI simulation produced."""

    def __init__(
        self,
        cas: Dict[str, CertificateAuthority],
        logs: List[CtLog],
        store: CertificateStore,
        domain_certs: Dict[int, List[Certificate]],
        extra_serving: List[Tuple[str, int, Certificate]],
        russian_ca_org: str = RUSSIAN_CA_ORG,
    ) -> None:
        self.cas = cas
        self.logs = logs
        self.store = store
        #: Registry-domain index -> issued certificates (chronological).
        self.domain_certs = domain_certs
        #: Non-registry Russian-affiliated sites: (name, address, cert).
        self.extra_serving = extra_serving
        self.russian_ca_org = russian_ca_org

    def authorities(self) -> List[CertificateAuthority]:
        """All CAs, catalogue order."""
        return list(self.cas.values())

    def serving_view(
        self, world: World
    ) -> Callable[[_dt.date], Iterable[Tuple[int, Certificate]]]:
        """Build the scanner's (date -> [(address, certificate)]) view.

        Each domain serves its most recently installed, still-valid
        certificate; a Russian-CA certificate, once installed, takes
        precedence (that is state policy, and it is what makes the
        Russian CA visible to scans at all).
        """

        def view(date: _dt.date) -> Iterable[Tuple[int, Certificate]]:
            hosting = world.hosting_state(date)
            active = world.population.active_mask(date)
            for domain_index, certs in self.domain_certs.items():
                if not active[domain_index]:
                    continue
                chosen: Optional[Certificate] = None
                for cert in certs:  # chronological
                    if not cert.is_valid_on(date):
                        continue
                    if (
                        chosen is not None
                        and chosen.chain_contains_organization(self.russian_ca_org)
                        and not cert.chain_contains_organization(self.russian_ca_org)
                    ):
                        continue
                    chosen = cert
                if chosen is None:
                    continue
                addresses = world.apex_addresses_for_plan(
                    domain_index, int(hosting[domain_index])
                )
                yield addresses[0], chosen
            for _name, address, cert in self.extra_serving:
                if cert.is_valid_on(date):
                    yield address, cert

        return view


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------


def simulate_pki(world: World, config: CertSimConfig) -> PkiBundle:
    """Run the certificate simulation against a built world."""
    rng = derive_rng(config.seed, "pki")
    cas: Dict[str, CertificateAuthority] = {}
    for spec in config.ca_specs:
        cas[spec.key] = CertificateAuthority(
            spec.key,
            spec.organization,
            spec.country,
            CaPolicy(
                validity_days=spec.validity_days,
                ct_logging=spec.ct_logging,
                brands=spec.brands,
            ),
        )
    russian_ca = CertificateAuthority(
        "russianca",
        RUSSIAN_CA_ORG,
        "RU",
        CaPolicy(validity_days=365, ct_logging=False, brands=("Russian Trusted Sub CA",)),
        established=_dt.date(2022, 3, 1),
    )

    logs = [CtLog("argon2022"), CtLog("xenon2022")]
    store = CertificateStore()
    domain_certs: Dict[int, List[Certificate]] = {}

    def record(cert: Certificate, date: _dt.date, ct_logging: bool,
               domain_index: Optional[int]) -> None:
        store.add(cert)
        if ct_logging:
            log = logs[int(rng.integers(0, len(logs)))]
            sct = log.add_chain(cert, date)
            cert.scts = cert.scts + (sct,)
        if domain_index is not None:
            domain_certs.setdefault(domain_index, []).append(cert)

    _simulate_global_stream(world, config, rng, cas, record)
    _simulate_sanctioned_stream(world, config, rng, cas, record)
    extra_serving = _simulate_russian_ca(world, config, rng, russian_ca, record)

    cas["russianca"] = russian_ca
    return PkiBundle(cas, logs, store, domain_certs, extra_serving)


def _simulate_global_stream(world, config, rng, cas, record) -> None:
    """Scaled population-wide issuance with stops, leaks, revocations.

    Sanctioned domains are excluded here — their certificate activity is
    modelled absolutely by the sanctioned stream, as in Table 2.
    """
    spec_by_key = {spec.key: spec for spec in config.ca_specs}
    keys = list(spec_by_key)
    sanctioned = np.zeros(len(world.population), dtype=bool)
    sanctioned[world.sanctioned_indices] = True
    for date in iter_days(config.start, config.end):
        base = (
            config.daily_volume_pre_conflict
            if date < config.conflict_start
            else config.daily_volume_post_conflict
        )
        total = int(rng.poisson(base * config.scale_factor))
        weights = np.asarray(
            [
                spec_by_key[key].active_weight(date, config.conflict_start)
                for key in keys
            ]
        )
        if weights.sum() <= 0 or total == 0:
            continue
        weights = weights / weights.sum()
        active_indices = world.population.active_indices(date)
        active_indices = active_indices[~sanctioned[active_indices]]
        if len(active_indices) == 0:
            continue
        picks = rng.choice(len(keys), size=total, p=weights)
        domains = rng.choice(active_indices, size=total)
        for ca_position, domain_index in zip(picks, domains):
            spec = spec_by_key[keys[int(ca_position)]]
            _issue_for_domain(
                world, rng, cas[spec.key], spec, int(domain_index), date, record,
                config,
            )
        # Brand-CN leakage after an issuance stop (Figure 8's lone dots).
        for key in keys:
            spec = spec_by_key[key]
            if spec.leaks_on(date) and rng.random() < spec.leak_rate:
                leak_domain = int(rng.choice(active_indices))
                _issue_for_domain(
                    world, rng, cas[key], spec, leak_domain, date, record, config,
                    brand=spec.brands[-1],
                )


def _issue_for_domain(
    world, rng, ca, spec, domain_index, date, record, config, brand=None
) -> None:
    name = str(world.population.record(domain_index).name)
    cert = ca.issue([name, f"www.{name}"], date, brand=brand)
    record(cert, date, spec.ct_logging, domain_index)
    if spec.revocation_rate > 0 and rng.random() < spec.revocation_rate:
        offset = int(rng.integers(10, 80))
        revoke_on = min(
            date + _dt.timedelta(days=offset),
            cert.not_after,
        )
        if revoke_on <= config.end + _dt.timedelta(days=30):
            ca.revoke(cert, revoke_on, RevocationReason.SUPERSEDED)


def _simulate_sanctioned_stream(world, config, rng, cas, record) -> None:
    """Absolute issuance/revocation over the 107 sanctioned domains."""
    sanctioned = world.sanctioned_indices
    if len(sanctioned) == 0:
        return
    spec_by_key = {spec.key: spec for spec in config.ca_specs}
    for s_spec in config.sanctioned_specs:
        ca_spec = spec_by_key[s_spec.ca_key]
        ca = cas[s_spec.ca_key]
        last_issue = s_spec.issue_until or ca_spec.stop_date or config.end
        last_issue = min(last_issue, config.end)
        window_days = (last_issue - config.start).days + 1
        if window_days <= 0:
            continue
        issued: List[Certificate] = []
        offsets = rng.integers(0, window_days, size=s_spec.issued)
        domain_picks = rng.choice(sanctioned, size=s_spec.issued)
        for position in np.argsort(offsets):
            date = config.start + _dt.timedelta(days=int(offsets[position]))
            domain_index = int(domain_picks[position])
            name = str(world.population.record(domain_index).name)
            sub = f"portal-{int(offsets[position])}-{position % 97}.{name}"
            cert = ca.issue([sub, name], date)
            record(cert, date, ca_spec.ct_logging, domain_index)
            issued.append(cert)
        # Revocations, clustered into the spec's window.
        lo, hi = s_spec.revocation_window
        span = max((hi - lo).days, 1)
        to_revoke = rng.choice(len(issued), size=s_spec.revoked, replace=False)
        for position in to_revoke:
            cert = issued[int(position)]
            revoke_on = max(
                lo + _dt.timedelta(days=int(rng.integers(0, span))),
                cert.not_before,
            )
            ca.revoke(cert, revoke_on, RevocationReason.PRIVILEGE_WITHDRAWN)


def _simulate_russian_ca(world, config, rng, russian_ca, record):
    """The never-logged state CA: 170 certificates, scan-only visibility."""
    population = world.population
    sanctioned = list(world.sanctioned_indices)
    rng.shuffle(sanctioned)
    chosen_sanctioned = sanctioned[: config.russian_ca_sanctioned_count]

    # Subjects must survive the scan window, or the scanner never sees
    # their certificate serving.
    from ..timeline import day_index

    survives = population.deleted > day_index(config.end) + 30
    sanctioned_set = set(world.sanctioned_indices)

    rf_indices = [
        index
        for index in np.flatnonzero(population.is_rf & survives)
        if index not in sanctioned_set
        and population.record(int(index)).created_day <= 0
    ][: config.russian_ca_rf_count]

    ru_needed = (
        config.russian_ca_cert_count
        - config.russian_ca_sanctioned_count
        - config.russian_ca_rf_count
        - config.russian_ca_external_count
    )
    stable_ru = [
        int(index)
        for index in np.flatnonzero(
            (~population.is_rf) & (population.created <= 0) & survives
        )
        if index not in sanctioned_set
    ]
    rng.shuffle(stable_ru)
    state_domains = stable_ru[: max(ru_needed, 0)]

    span = max((config.russian_ca_end - config.russian_ca_start).days, 1)
    extra_serving: List[Tuple[str, int, Certificate]] = []

    def issue_for(index: Optional[int], name: str) -> Certificate:
        date = config.russian_ca_start + _dt.timedelta(days=int(rng.integers(0, span)))
        cert = russian_ca.issue([name], date)
        record(cert, date, False, index)
        return cert

    for index in list(chosen_sanctioned) + list(state_domains) + [
        int(i) for i in rf_indices
    ]:
        issue_for(int(index), str(population.record(int(index)).name))

    # The long tail of Russian-affiliated sites under other TLDs.
    external_pool = world.address_plan.hosting_pool(
        world.catalog.get("ruhost1").primary_asn
    )
    for position in range(config.russian_ca_external_count):
        name = f"portal.ru-affiliate-{position:02d}.su"
        cert = issue_for(None, name)
        address = external_pool.first + 1000 + position
        extra_serving.append((name, address, cert))

    return extra_serving
