"""The calibrated conflict scenario.

This module encodes the paper's reported magnitudes and dates as a
scenario: initial cohort weights reproduce the June 2017 baselines
(71.0% fully-Russian hosting, 67.0% fully-Russian name service, the
NS-TLD mix of Figure 3), slow pre-conflict drifts reproduce the gradual
TLD-dependency externalisation of Figure 2, and the February–May 2022
events reproduce the provider exits of Sections 3.2–3.4 (Netnod,
Amazon, Sedo, Cloudflare, Google, Hetzner, Linode) and the WebPKI shifts
of Section 4.

The *analysis* layer never sees any of these parameters: it works purely
from simulated measurements, and the integration suite checks it recovers
the paper's numbers.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..providers.addressing import AddressPlan
from ..providers.catalog import ProviderCatalog, standard_catalog
from ..registry.population import DomainPopulation, PopulationConfig
from ..registry.tld import TLD_RU
from ..rng import derive_rng
from ..sanctions.entity import Designation, SanctionedEntity, SanctionsAuthority
from ..sanctions.lists import SanctionsList
from ..timeline import CONFLICT_START, STUDY_DAYS, STUDY_END, STUDY_START
from .certsim import CaSpec, CertSimConfig, PkiBundle, SanctionedIssuanceSpec, simulate_pki
from .events import DomainEventLog, Field, InfraEvent
from .flows import Flow, FlowEngine, Pulse
from .manifest import ScenarioManifest
from .plans import DnsPlan, DnsPlanTable, HostingPlan, HostingPlanTable
from .variant import ScenarioVariant
from .world import World

__all__ = ["ConflictScenarioConfig", "build_world", "build_pki", "build_scenario"]

#: Real-world concurrent registration count the scale factor is against.
REAL_POPULATION = 4_950_000

# Key 2022 dates from the paper.
NETNOD_CUTOFF = _dt.date(2022, 3, 3)
AMAZON_ANNOUNCEMENT = _dt.date(2022, 3, 8)
SEDO_ANNOUNCEMENT = _dt.date(2022, 3, 9)
GOOGLE_ANNOUNCEMENT = _dt.date(2022, 3, 10)
GOOGLE_INTRA_MIGRATION = _dt.date(2022, 3, 16)
MEASUREMENT_OUTAGE = _dt.date(2021, 3, 22)


class ConflictScenarioConfig:
    """Scenario knobs; defaults reproduce the paper at 1:250 scale."""

    def __init__(
        self,
        scale: float = 250.0,
        seed: int = 20220224,
        geo_lag_days: int = 0,
        netnod_mode: str = "renumber",
        with_pki: bool = True,
        sanctioned_cert_scale: Optional[float] = None,
        sanctioned_domain_count: int = 107,
        variant: Optional["ScenarioVariant"] = None,
        scenario_id: str = "baseline",
        spec_digest: Optional[str] = None,
        from_spec: bool = False,
    ) -> None:
        if scale <= 0:
            raise ScenarioError(f"scale must be positive: {scale}")
        if netnod_mode not in ("renumber", "transfer"):
            raise ScenarioError(f"unknown netnod_mode {netnod_mode!r}")
        self.scale = scale
        self.seed = seed
        self.geo_lag_days = geo_lag_days
        #: "renumber": the cloud NS hosts get new RU addresses on March 3.
        #: "transfer": their prefix is re-announced from RU-CENTER's ASN and
        #: geolocation snapshots catch up ``geo_lag_days`` later.
        self.netnod_mode = netnod_mode
        self.with_pki = with_pki
        #: Scales the sanctioned-domain certificate volumes (ratios
        #: preserved).  The default tracks the population scale so that
        #: sanctioned certificates keep their real-world proportion to the
        #: global stream (Table 2's "all domains" side stays honest),
        #: floored to keep enough per-CA samples for stable rates.
        if sanctioned_cert_scale is None:
            sanctioned_cert_scale = max(0.05, min(1.0, 25.0 * self.scale_factor))
        self.sanctioned_cert_scale = sanctioned_cert_scale
        self.sanctioned_domain_count = sanctioned_domain_count
        #: Counterfactual world deltas (see :mod:`repro.sim.variant`) and
        #: the scenario identity the archive fingerprint is bound to.
        #: ``None``/noop variants are normalised away so a baseline config
        #: is one thing regardless of how it was constructed.
        if variant is not None and variant.is_noop():
            variant = None
        self.variant = variant
        self.scenario_id = str(scenario_id)
        self.spec_digest = spec_digest
        #: True when this config came out of ``ScenarioSpec.compile()``;
        #: ad-hoc construction at analysis call sites is deprecated.
        self.from_spec = from_spec
        if self.variant is not None and self.scenario_id == "baseline":
            # A world-altering variant must never masquerade as baseline:
            # the archive fingerprint omits scenario identity for baseline
            # so its manifests stay byte-identical to pre-scenario builds.
            raise ScenarioError(
                "a non-noop variant needs its own scenario_id, not 'baseline'"
            )

    @property
    def initial_count(self) -> int:
        """Concurrent registrations on study day 0 at this scale."""
        return max(400, round(REAL_POPULATION / self.scale))

    @property
    def scale_factor(self) -> float:
        """Simulated-to-real population ratio."""
        return self.initial_count / REAL_POPULATION

    def scaled(self, real_count: float, minimum: int = 1) -> int:
        """A real-world count converted to this scale (at least ``minimum``)."""
        return max(minimum, int(round(real_count * self.scale_factor)))


# ----------------------------------------------------------------------
# Plans and initial cohort weights
# ----------------------------------------------------------------------

def _dns_plans(catalog: ProviderCatalog) -> DnsPlanTable:
    def hosts(key: str) -> List[str]:
        return [str(h.hostname) for h in catalog.get(key).ns_hosts]

    table = DnsPlanTable()
    single = [
        ("regru_dns", "regru"),
        ("rucenter_dns", "rucenter"),
        ("timeweb_dns", "timeweb"),
        ("ruhost1_dns", "ruhost1"),
        ("ruhost2_dns", "ruhost2"),
        ("ruhost3_dns", "ruhost3"),
        ("ruhost4_dns", "ruhost4"),
        ("ruhost5_dns", "ruhost5"),
        ("ruhost6_dns", "ruhost6"),
        ("beget_dns", "beget"),
        ("yandex_dns", "yandexcloud"),
        ("nsmaster_dns", "nsmasterorg"),
        ("cloudflare_dns", "cloudflare"),
        ("route53_dns", "amazon"),
        ("godaddy_dns", "godaddy"),
        ("hetzner_dns", "hetzner"),
        ("linode_dns", "linode"),
        ("ovh_dns", "ovh"),
        ("sedo_dns", "sedo"),
        ("prodns_anycast", "prodns"),
        ("prodns_ru", "prodns_ru"),
        ("infobiz_dns", "infobizdns"),
        ("longtail1_dns", "longtail1"),
        ("longtail2_dns", "longtail2"),
        ("longtail3_dns", "longtail3"),
        ("wedos_dns", "wedos"),
        ("zonee_dns", "zonee"),
        ("homepl_dns", "homepl"),
        ("germanhost_dns", "germanhost"),
    ]
    for plan_key, provider_key in single:
        table.add(DnsPlan(plan_key, hosts(provider_key)))
    dual = [
        # RU-CENTER standard NS plus the Netnod-hosted cloud pair: nic.ru
        # *names* throughout, but geographically partial until March 3.
        ("rucenter_cloud", "rucenter", "rucenter_cloud"),
        ("ru_plus_yandex", "regru", "yandexcloud"),
        ("ru_plus_dnspro", "regru", "prodns_ru"),
        ("ru_plus_org", "rucenter", "nsmasterorg"),
        ("ru_plus_begetcom", "regru", "beget"),
        ("ru_plus_cloudflare", "regru", "cloudflare"),
        ("ru_plus_route53", "rucenter", "amazon"),
        ("ru_plus_hetzner", "timeweb", "hetzner"),
        ("ru_plus_linode", "regru", "linode"),
    ]
    for plan_key, primary, secondary in dual:
        table.add(DnsPlan(plan_key, hosts(primary) + hosts(secondary)))
    return table


#: Initial DNS-plan weights (percent of the population, June 2017).
DNS_WEIGHTS: Dict[str, float] = {
    # NS names under .ru, hosts in Russia  (tld full, geo full)
    "regru_dns": 14.0, "rucenter_dns": 12.0, "timeweb_dns": 9.0,
    "ruhost1_dns": 4.0, "ruhost2_dns": 4.0, "ruhost3_dns": 4.0,
    "ruhost4_dns": 4.0, "ruhost5_dns": 4.0, "ruhost6_dns": 3.0,
    # nic.ru names, one host at Netnod (SE)  (tld full, geo part)
    "rucenter_cloud": 1.5,
    # Russian operators with non-Russian NS TLDs  (tld non, geo full)
    "beget_dns": 0.8, "yandex_dns": 1.3, "nsmaster_dns": 1.7,
    # Mixed-TLD Russian stacks  (tld part, geo full)
    "ru_plus_yandex": 3.2, "ru_plus_dnspro": 0.5, "ru_plus_org": 1.5,
    "ru_plus_begetcom": 0.0,
    # Russian primary + Western secondary  (tld part, geo part)
    "ru_plus_cloudflare": 5.3, "ru_plus_route53": 4.4,
    "ru_plus_hetzner": 4.2, "ru_plus_linode": 1.0,
    # Fully Western DNS  (tld non, geo non)
    "cloudflare_dns": 3.2, "route53_dns": 1.4, "godaddy_dns": 0.8,
    "hetzner_dns": 0.8, "linode_dns": 0.4, "ovh_dns": 1.1, "sedo_dns": 0.6,
    "prodns_anycast": 7.55, "infobiz_dns": 0.3,
    # The long-tail TLDs (<1% each in Figure 3).
    "longtail1_dns": 0.15, "longtail2_dns": 0.15, "longtail3_dns": 0.15,
    # Small European hosts (sanctioned-domain homes; ~0 in the population)
    "prodns_ru": 0.0, "wedos_dns": 0.0, "zonee_dns": 0.0,
    "homepl_dns": 0.0, "germanhost_dns": 0.0,
}


def _hosting_plans(catalog: ProviderCatalog) -> HostingPlanTable:
    table = HostingPlanTable()

    def add(plan_key: str, provider_key: str, asn: Optional[int] = None) -> None:
        provider = catalog.get(provider_key)
        table.add(
            HostingPlan(
                plan_key,
                [(provider_key, asn if asn is not None else provider.primary_asn)],
            )
        )

    for provider_key in (
        "regru", "rucenter", "timeweb", "beget", "selectel", "yandexcloud",
        "sprinthost", "masterhost", "mchost", "firstvds", "rtcomm", "ihcru",
        "ruhost1", "ruhost2", "ruhost3", "ruhost4", "ruhost5", "ruhost6",
        "cloudflare", "sedo", "amazon", "hetzner", "linode", "godaddy",
        "ovh", "digitalocean", "contabo", "wedos", "zonee", "homepl",
        "serverel", "germanhost",
    ):
        add(f"{provider_key}_h", provider_key)
    add("google_h", "google", 15169)
    add("google2_h", "google", 396982)
    # Parked inventory bouncing between Amazon and Sedo (Figure 4).
    add("park_a_h", "amazon")
    add("park_s_h", "sedo")
    # The rare dual-homed apex (RU + DE A records): the paper's 0.19%.
    table.add(
        HostingPlan(
            "dual_ru_de",
            [("ruhost1", catalog.get("ruhost1").primary_asn),
             ("germanhost", catalog.get("germanhost").primary_asn)],
        )
    )
    return table


#: Initial hosting-plan weights (percent of the population, June 2017).
HOSTING_WEIGHTS: Dict[str, float] = {
    # The paper's stable Russian block (REG.RU + RU-CENTER + Timeweb +
    # Beget together: 38% of Russian domains).
    "regru_h": 12.5, "rucenter_h": 10.0, "timeweb_h": 8.5, "beget_h": 7.0,
    "selectel_h": 6.0, "yandexcloud_h": 4.0, "sprinthost_h": 3.0,
    "masterhost_h": 3.0, "mchost_h": 2.0, "firstvds_h": 2.0,
    "rtcomm_h": 1.5, "ihcru_h": 1.5,
    "ruhost1_h": 2.0, "ruhost2_h": 2.0, "ruhost3_h": 2.0, "ruhost4_h": 2.0,
    "ruhost5_h": 1.0, "ruhost6_h": 1.0,
    # Partially Russian hosting (the paper's 0.19%).
    "dual_ru_de": 0.19,
    # Western hosting (28.81% in total).
    "cloudflare_h": 6.3, "sedo_h": 3.3, "amazon_h": 0.26, "park_a_h": 0.34,
    "park_s_h": 0.0, "google_h": 0.35, "google2_h": 0.0, "hetzner_h": 3.5,
    "linode_h": 1.5, "godaddy_h": 3.0, "ovh_h": 2.5, "digitalocean_h": 1.96,
    "contabo_h": 1.0, "wedos_h": 0.5, "zonee_h": 0.3, "homepl_h": 0.5,
    "serverel_h": 0.1, "germanhost_h": 3.4,
}

#: Hosting-weight adjustments for domains *registered* after March 8, 2022
#: (existing Western-cloud customers registering fresh .ru names — the
#: paper's "574 newly registered domains" appearing inside Amazon).
BIRTH_SHIFT = {
    "amazon_h": +0.21, "google_h": +0.066, "cloudflare_h": +0.70,
    "serverel_h": +0.30, "ruhost1_h": -0.50, "ruhost2_h": -0.40,
    "ruhost3_h": -0.376,
}


def _weight_vector(table, weights: Dict[str, float]) -> np.ndarray:
    vector = np.zeros(len(table), dtype=float)
    for key, value in weights.items():
        vector[table.id_of(key)] = value
    missing = {plan.key for plan in table.plans()} - set(weights)
    if missing:
        raise ScenarioError(f"weights missing for plans: {sorted(missing)}")
    if abs(vector.sum() - 100.0) > 0.2:
        raise ScenarioError(f"weights sum to {vector.sum():.2f}, expected 100")
    return vector / vector.sum()


# ----------------------------------------------------------------------
# Sanctioned domains
# ----------------------------------------------------------------------

_SANCTION_WAVES: Tuple[Tuple[_dt.date, int], ...] = (
    (_dt.date(2022, 2, 24), 60),
    (_dt.date(2022, 3, 11), 20),
    (_dt.date(2022, 3, 24), 15),
    (_dt.date(2022, 4, 6), 12),
)


def _sanctioned_names(count: int) -> List[Tuple[str, str]]:
    return [(f"sanctioned-entity-{index:03d}", TLD_RU) for index in range(count)]


def _build_sanctions_list(
    population: DomainPopulation,
    count: int,
    waves: Sequence[Tuple[_dt.date, int]] = _SANCTION_WAVES,
) -> SanctionsList:
    entities: List[SanctionedEntity] = []
    index = 0
    entity_id = 0
    authorities_cycle = (
        (SanctionsAuthority.US_OFAC_SDN,),
        (SanctionsAuthority.UK_SANCTIONS_LIST,),
        (SanctionsAuthority.US_OFAC_SDN, SanctionsAuthority.UK_SANCTIONS_LIST),
    )
    for wave_date, wave_size in waves:
        remaining = min(wave_size, count - index)
        while remaining > 0:
            group = min(remaining, 1 + entity_id % 3)
            domains = [
                population.record(index + position).name
                for position in range(group)
            ]
            designations = [
                Designation(authority, wave_date)
                for authority in authorities_cycle[entity_id % 3]
            ]
            entities.append(
                SanctionedEntity(
                    f"Sanctioned Entity {entity_id:03d}", domains, designations
                )
            )
            index += group
            remaining -= group
            entity_id += 1
        if index >= count:
            break
    return SanctionsList(entities)


def _assign_sanctioned(
    base_host: np.ndarray,
    base_dns: np.ndarray,
    hosting: HostingPlanTable,
    dns: DnsPlanTable,
    events: DomainEventLog,
    count: int,
    scripted: bool = True,
) -> None:
    """Fix the sanctioned domains' assignments and scripted moves.

    ``scripted=False`` (counterfactuals without the conflict) keeps the
    pre-conflict assignments but skips every 2022 repatriation event.
    """
    ru_host_cycle = ["regru_h", "rucenter_h", "timeweb_h", "selectel_h", "rtcomm_h"]
    for index in range(count):
        base_host[index] = hosting.id_of(ru_host_cycle[index % len(ru_host_cycle)])

    # Six domains hosted abroad pre-conflict (paper Section 3.3).
    foreign = [
        (36, "wedos_h"), (37, "zonee_h"), (38, "germanhost_h"),   # stay
        (39, "germanhost_h"), (40, "germanhost_h"), (41, "homepl_h"),  # move
    ]
    for index, plan_key in foreign:
        base_host[index] = hosting.id_of(plan_key)
    if scripted:
        events.add(_dt.date(2022, 3, 15), 39, Field.HOSTING, hosting.id_of("rucenter_h"))
        events.add(_dt.date(2022, 4, 20), 40, Field.HOSTING, hosting.id_of("rucenter_h"))
        events.add(_dt.date(2022, 5, 18), 41, Field.HOSTING, hosting.id_of("rucenter_h"))

    # Name service: 31 on the Netnod-backed cloud, 5 with a Hetzner
    # secondary, 6 fully Western, 65 fully Russian (34.0% / 5.2% on Feb 24).
    for index in range(0, 31):
        base_dns[index] = dns.id_of("rucenter_cloud")
    for index in range(31, 36):
        base_dns[index] = dns.id_of("ru_plus_hetzner")
    for index, plan_key in [
        (36, "cloudflare_dns"), (37, "cloudflare_dns"), (38, "cloudflare_dns"),
        (39, "godaddy_dns"), (40, "godaddy_dns"), (41, "hetzner_dns"),
    ]:
        base_dns[index] = dns.id_of(plan_key)
    full_cycle = ["rucenter_dns"] * 30 + ["regru_dns"] * 15 + ["timeweb_dns"] * 10 + [
        "ruhost1_dns"
    ] * 10
    for offset, index in enumerate(range(42, count)):
        base_dns[index] = dns.id_of(full_cycle[offset % len(full_cycle)])

    if not scripted:
        return
    # March 4: four of the five Hetzner secondaries are dropped, completing
    # the jump to 93.8% fully-Russian name service.
    for index in range(31, 35):
        events.add(_dt.date(2022, 3, 4), index, Field.DNS, dns.id_of("rucenter_dns"))
    # Two of the Western-DNS stragglers repatriate in April.
    events.add(_dt.date(2022, 4, 15), 36, Field.DNS, dns.id_of("rucenter_dns"))
    events.add(_dt.date(2022, 4, 28), 37, Field.DNS, dns.id_of("rucenter_dns"))


# ----------------------------------------------------------------------
# Flows: drifts and conflict events
# ----------------------------------------------------------------------

_RU_FULL_DNS = [
    "regru_dns", "rucenter_dns", "timeweb_dns",
    "ruhost1_dns", "ruhost2_dns", "ruhost3_dns",
    "ruhost4_dns", "ruhost5_dns", "ruhost6_dns",
]


def _dns_weights_at(frac: float) -> Dict[str, float]:
    """DNS cohort mix after a fraction of the pre-conflict drift.

    Newly registered domains join the market *as it is*, not as it was in
    2017 — without this, churn would dilute the Figure 2/3 drifts.  The
    deltas mirror the drift flows exactly: -6.3pp out of all-.ru NS
    stacks, +5.3pp ru+beget(.com), +1.0pp ru+org, and the ru+yandex(.net)
    to ru+pro shift.
    """
    weights = dict(DNS_WEIGHTS)
    total_sources = sum(DNS_WEIGHTS[key] for key in _RU_FULL_DNS)
    for key in _RU_FULL_DNS:
        weights[key] -= DNS_WEIGHTS[key] * 6.3 * frac / total_sources
    weights["ru_plus_begetcom"] += 5.3 * frac
    weights["ru_plus_org"] += 1.0 * frac
    weights["ru_plus_yandex"] -= 2.7 * frac
    weights["ru_plus_dnspro"] += 2.7 * frac
    return weights


def _dns_flows() -> List[Flow]:
    day0 = _dt.date(2017, 6, 18)
    return [
        # Pre-conflict drift: growing external NS-TLD dependency (Fig. 2/3).
        # Most of the drift rides on the birth mix (_dns_weights_at);
        # these flows move the long-lived stock along the same trajectory.
        Flow(Field.DNS, _RU_FULL_DNS, "ru_plus_begetcom", 3.9, day0, CONFLICT_START),
        Flow(Field.DNS, _RU_FULL_DNS, "ru_plus_org", 0.75, day0, CONFLICT_START),
        Flow(Field.DNS, ["ru_plus_yandex"], "ru_plus_dnspro", 2.0, day0, CONFLICT_START),
        # Conflict-period DNS migrations (Section 3.2).
        Flow(Field.DNS, ["ru_plus_hetzner"], "ru_plus_begetcom", 3.0,
             _dt.date(2022, 3, 25), _dt.date(2022, 4, 6)),
        Flow(Field.DNS, ["ru_plus_linode"], "ru_plus_begetcom", 1.0,
             _dt.date(2022, 3, 25), _dt.date(2022, 4, 11)),
        Flow(Field.DNS, ["prodns_anycast"], "prodns_ru", 1.2,
             _dt.date(2022, 2, 25), _dt.date(2022, 3, 27)),
        Flow(Field.DNS, ["cloudflare_dns"], "ru_plus_cloudflare", 0.5,
             _dt.date(2022, 2, 25), _dt.date(2022, 3, 21)),
        Flow(Field.DNS, ["sedo_dns"], "regru_dns", 0.2,
             SEDO_ANNOUNCEMENT, _dt.date(2022, 3, 21)),
    ]


def _hosting_flows(config: ConflictScenarioConfig) -> Tuple[List[Flow], List[Pulse]]:
    flows = [
        # Hetzner and Linode exits (end of March).
        Flow(Field.HOSTING, ["hetzner_h"], "timeweb_h", 0.75,
             _dt.date(2022, 3, 25), _dt.date(2022, 4, 16)),
        Flow(Field.HOSTING, ["hetzner_h"], "ruhost1_h", 0.75,
             _dt.date(2022, 3, 25), _dt.date(2022, 4, 16)),
        Flow(Field.HOSTING, ["linode_h"], "ruhost2_h", 0.5,
             _dt.date(2022, 3, 25), _dt.date(2022, 4, 11)),
        # Pre-sanctions flight from US providers to Russia and the NL.
        Flow(Field.HOSTING, ["godaddy_h"], "ruhost3_h", 0.5,
             _dt.date(2022, 2, 25), _dt.date(2022, 3, 27)),
        Flow(Field.HOSTING, ["digitalocean_h"], "serverel_h", 0.3,
             _dt.date(2022, 2, 25), _dt.date(2022, 3, 27)),
        # Cloudflare: business as usual, slight net inflow.
        Flow(Field.HOSTING, ["germanhost_h"], "cloudflare_h", 0.4,
             _dt.date(2022, 2, 25), STUDY_END),
        Flow(Field.HOSTING, ["hetzner_h"], "cloudflare_h", 0.28,
             _dt.date(2022, 2, 25), STUDY_END),
        Flow(Field.HOSTING, ["cloudflare_h"], "ruhost4_h", 0.38,
             _dt.date(2022, 2, 25), STUDY_END),
    ]
    pulses = [
        # Parked inventory: Sedo -> Amazon -> Sedo -> Serverel (Fig. 4/6/7).
        Pulse(Field.HOSTING, ["sedo_h"], "park_a_h", _dt.date(2022, 3, 12),
              fraction=0.8),
        Pulse(Field.HOSTING, ["park_a_h"], "park_s_h", _dt.date(2022, 3, 26),
              fraction=1.0),
        Pulse(Field.HOSTING, ["park_s_h"], "serverel_h", _dt.date(2022, 4, 12),
              fraction=0.7),
        Pulse(Field.HOSTING, ["park_s_h"], "serverel_h", _dt.date(2022, 4, 28),
              fraction=0.9),
        Pulse(Field.HOSTING, ["park_s_h"], "serverel_h", _dt.date(2022, 5, 12),
              fraction=0.9),
        Pulse(Field.HOSTING, ["sedo_h"], "serverel_h", _dt.date(2022, 5, 12),
              fraction=0.9),
        # Google: intra-provider migration to AS396982 around March 16
        # (57.1% relocate; 75.2% of those stay inside Google).
        Pulse(Field.HOSTING, ["google_h"], "google2_h", GOOGLE_INTRA_MIGRATION,
              fraction=0.428),
        Pulse(Field.HOSTING, ["google_h"], "timeweb_h", GOOGLE_INTRA_MIGRATION,
              fraction=0.248),
        # Existing-domain inflows the paper confirms with whois:
        # 988 relocated into Amazon, 187 into Google.
        Pulse(Field.HOSTING, ["linode_h"], "amazon_h", _dt.date(2022, 4, 1),
              count=config.scaled(988)),
        Pulse(Field.HOSTING, ["digitalocean_h"], "google_h", _dt.date(2022, 4, 1),
              count=config.scaled(187)),
    ]
    return flows, pulses


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------

def _ca_specs() -> List[CaSpec]:
    return [
        CaSpec("letsencrypt", "Let's Encrypt", "US", share=91.58, validity_days=90,
               brands=("R3", "E1"), revocation_rate=0.0006),
        CaSpec("digicert", "DigiCert", "US", share=3.40, validity_days=365,
               brands=("DigiCert TLS RSA SHA256 2020 CA1", "RapidSSL TLS 2020",
                       "GeoTrust TLS DV RSA 2020"),
               stop_date=_dt.date(2022, 2, 25), leak_days=45, leak_rate=0.08,
               revocation_rate=0.008),
        CaSpec("cpanel", "cPanel", "US", share=2.13, validity_days=90,
               brands=("cPanel, Inc. Certification Authority",),
               stop_date=_dt.date(2022, 3, 26),
               share_multiplier_post_conflict=0.30, revocation_rate=0.001),
        CaSpec("sectigo", "Sectigo", "GB", share=1.00, validity_days=365,
               brands=("Sectigo RSA DV", "Sectigo ECC DV"),
               stop_date=_dt.date(2022, 3, 15), leak_days=30, leak_rate=0.05,
               share_multiplier_post_conflict=0.15, revocation_rate=0.0515),
        CaSpec("globalsign", "GlobalSign", "JP", share=0.60, validity_days=365,
               brands=("GlobalSign GCC R3 DV",),
               share_multiplier_post_conflict=1.30, revocation_rate=0.0168),
        CaSpec("zerossl", "ZeroSSL", "AT", share=0.35, validity_days=90,
               brands=("ZeroSSL RSA Domain Secure Site CA",),
               stop_date=_dt.date(2022, 2, 28), leak_days=20, leak_rate=0.05,
               revocation_rate=0.003),
        CaSpec("gogetssl", "GoGetSSL", "LV", share=0.30, validity_days=365,
               brands=("GoGetSSL RSA DV CA",),
               stop_date=_dt.date(2022, 2, 26), revocation_rate=0.002),
        CaSpec("amazonca", "Amazon", "US", share=0.25, validity_days=395,
               brands=("Amazon RSA 2048 M01",),
               stop_date=AMAZON_ANNOUNCEMENT, revocation_rate=0.001),
        CaSpec("cloudflareca", "Cloudflare", "US", share=0.20, validity_days=90,
               brands=("Cloudflare Inc ECC CA-3",),
               stop_date=_dt.date(2022, 3, 26), leak_days=25, leak_rate=0.04,
               revocation_rate=0.001),
        CaSpec("googlets", "Google Trust Services", "US", share=0.15,
               validity_days=90, brands=("GTS CA 1P5",),
               share_multiplier_post_conflict=1.80, revocation_rate=0.0005),
        CaSpec("geocerts", "GeoCerts", "US", share=0.04, validity_days=365,
               brands=("GeoCerts DV CA",), stop_date=CONFLICT_START),
    ]


def _sanctioned_specs(config: ConflictScenarioConfig) -> List[SanctionedIssuanceSpec]:
    def scaled(value: int) -> int:
        return max(1, int(round(value * config.sanctioned_cert_scale)))

    return [
        SanctionedIssuanceSpec("letsencrypt", scaled(16_000), scaled(196),
                               (_dt.date(2022, 2, 25), _dt.date(2022, 5, 10))),
        SanctionedIssuanceSpec("digicert", scaled(308), scaled(308),
                               (_dt.date(2022, 2, 25), _dt.date(2022, 3, 20)),
                               issue_until=_dt.date(2022, 2, 25)),
        SanctionedIssuanceSpec("globalsign", scaled(905), scaled(23),
                               (_dt.date(2022, 3, 1), _dt.date(2022, 4, 15))),
        SanctionedIssuanceSpec("sectigo", scaled(164), scaled(164),
                               (_dt.date(2022, 3, 15), _dt.date(2022, 4, 5)),
                               issue_until=_dt.date(2022, 3, 15)),
        SanctionedIssuanceSpec("zerossl", scaled(82), scaled(2),
                               (_dt.date(2022, 3, 1), _dt.date(2022, 4, 1)),
                               issue_until=_dt.date(2022, 2, 28)),
    ]


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

def build_world(config: Optional[ConflictScenarioConfig] = None) -> World:
    """Build the conflict world (registry + assignments + events).

    When ``config.variant`` is set, the counterfactual deltas are applied
    by reshaping the scripted inputs (flow/pulse lists, sanction waves,
    scripted events) *before* anything random runs — the baseline path
    (``variant=None``) executes exactly the pre-scenario-engine sequence
    of RNG draws, which is what keeps baseline archives byte-identical.
    """
    config = config or ConflictScenarioConfig()
    variant = getattr(config, "variant", None)
    conflict_happens = variant is None or variant.conflict
    catalog = standard_catalog()
    address_plan = AddressPlan(catalog)
    dns_table = _dns_plans(catalog)
    hosting_table = _hosting_plans(catalog)

    population = DomainPopulation(
        PopulationConfig(
            seed=config.seed,
            initial_count=config.initial_count,
            reserved_names=_sanctioned_names(config.sanctioned_domain_count),
        )
    )
    n = len(population)
    rng = derive_rng(config.seed, "scenario", "assignment")

    host_weights = _weight_vector(hosting_table, HOSTING_WEIGHTS)
    base_host = rng.choice(len(hosting_table), size=n, p=host_weights).astype(np.int32)

    # DNS mix drifts with registration date (see _dns_weights_at).
    conflict_day = (CONFLICT_START - STUDY_START).days
    fractions = np.clip(population.created / conflict_day, 0.0, 1.0)
    buckets = np.round(fractions * 20).astype(int)  # 5% drift resolution
    base_dns = np.zeros(n, dtype=np.int32)
    for bucket in np.unique(buckets):
        members = np.flatnonzero(buckets == bucket)
        bucket_weights = _weight_vector(
            dns_table, _dns_weights_at(bucket / 20.0)
        )
        base_dns[members] = rng.choice(
            len(dns_table), size=len(members), p=bucket_weights
        ).astype(np.int32)

    # Post-March-8 registrations lean slightly toward the Western clouds
    # whose existing customers kept registering .ru names.
    shifted = dict(HOSTING_WEIGHTS)
    for key, delta in BIRTH_SHIFT.items():
        shifted[key] = shifted[key] + delta
    shifted_weights = _weight_vector(hosting_table, shifted)
    late_birth = population.created >= (AMAZON_ANNOUNCEMENT - _dt.date(2017, 6, 18)).days
    late_indices = np.flatnonzero(late_birth)
    if conflict_happens and len(late_indices):
        base_host[late_indices] = rng.choice(
            len(hosting_table), size=len(late_indices), p=shifted_weights
        ).astype(np.int32)

    # Scripted flows (sanctioned domains are excluded from random draws).
    engine = FlowEngine(
        population,
        {
            Field.DNS: {p.key: i for i, p in enumerate(dns_table.plans())},
            Field.HOSTING: {p.key: i for i, p in enumerate(hosting_table.plans())},
        },
        derive_rng(config.seed, "scenario", "flows"),
    )
    sanct_count = config.sanctioned_domain_count
    protected = np.zeros(n, dtype=bool)
    protected[:sanct_count] = True
    dns_flows = _dns_flows()
    hosting_flows, hosting_pulses = _hosting_flows(config)
    flows = dns_flows + hosting_flows
    pulses = hosting_pulses
    if variant is not None:
        flows, pulses = variant.apply(flows, pulses)
    events, _final = engine.run(
        base={Field.HOSTING: base_host, Field.DNS: base_dns},
        flows=flows,
        pulses=pulses,
        horizon_days=STUDY_DAYS,
        exclude=protected,
    )

    _assign_sanctioned(base_host, base_dns, hosting_table, dns_table, events,
                       sanct_count, scripted=conflict_happens)
    if variant is not None and variant.sanction_waves is not None:
        waves = variant.sanction_waves
    elif conflict_happens:
        waves = _SANCTION_WAVES
    else:
        waves = ()
    sanctions = _build_sanctions_list(population, sanct_count, waves)

    # Netnod / RU-CENTER, March 3 2022.
    if not conflict_happens:
        netnod_event = None
    elif config.netnod_mode == "renumber":
        netnod_event = InfraEvent(
            NETNOD_CUTOFF,
            "Netnod drops RU-CENTER cloud NS; hosts renumbered into AS48287",
            ns_moves=[("ns4-cloud.nic.ru", "rucenter"),
                      ("ns8-cloud.nic.ru", "rucenter")],
        )
    else:
        prefix = address_plan.prefix_of_asn(
            catalog.get("netnodcloud").primary_asn
        )
        netnod_event = InfraEvent(
            NETNOD_CUTOFF,
            "Netnod segment prefix transferred to AS48287 (geo lags)",
            route_changes=[(str(prefix), catalog.get("rucenter").primary_asn)],
            geo_changes=[(str(prefix), "RU")],
        )

    world = World(
        population=population,
        catalog=catalog,
        address_plan=address_plan,
        dns_plans=dns_table,
        hosting_plans=hosting_table,
        base_hosting=base_host,
        base_dns=base_dns,
        events=events,
        infra_events=[netnod_event] if netnod_event is not None else [],
        sanctions=sanctions,
        sanctioned_indices=np.arange(sanct_count),
        geo_lag_days=config.geo_lag_days,
    )
    world.manifest = _build_manifest(config, sanctions, variant)
    return world


def _build_manifest(
    config: ConflictScenarioConfig,
    sanctions: SanctionsList,
    variant: Optional[ScenarioVariant] = None,
) -> ScenarioManifest:
    """The scripted timeline, for narration (never read by the analysis)."""
    manifest = ScenarioManifest()
    if variant is not None and not variant.conflict:
        manifest.record(
            CONFLICT_START, "counterfactual",
            f"scenario {config.scenario_id!r}: the invasion never happens; "
            "pre-2022 drifts continue undisturbed",
        )
        for date, actor, description in variant.notes:
            manifest.record(date, actor, description)
        return manifest
    manifest.record(CONFLICT_START, "conflict", "Russia invades Ukraine")
    for wave_date in sanctions.listing_dates():
        listed = len(sanctions.domains_listed_as_of(wave_date))
        manifest.record(
            wave_date, "sanctions",
            f"designation wave brings the listed-domain total to {listed}",
        )
    manifest.record(
        _dt.date(2022, 2, 25), "DigiCert",
        "stops issuing for .ru/.рф (brand-CN leakage for ~45 days)",
    )
    manifest.record(
        NETNOD_CUTOFF, "Netnod",
        f"stops serving RU-CENTER's cloud NS ({config.netnod_mode} mode)",
    )
    manifest.record(
        _dt.date(2022, 3, 1), "Russia",
        "Ministry of Digital Development stands up the Russian Trusted Root CA",
    )
    manifest.record(
        _dt.date(2022, 3, 7), "Cloudflare",
        "complies with sanctions but keeps serving Russia ('business as usual')",
    )
    manifest.record(
        AMAZON_ANNOUNCEMENT, "Amazon",
        "stops accepting new Russian/Belarusian AWS registrations",
    )
    manifest.record(
        SEDO_ANNOUNCEMENT, "Sedo",
        "'pulls the plug' on Russian domains; parked inventory starts moving",
    )
    manifest.record(
        GOOGLE_ANNOUNCEMENT, "Google",
        "stops accepting new cloud customers in Russia",
    )
    manifest.record(
        _dt.date(2022, 3, 15), "Sectigo", "stops issuing for .ru/.рф"
    )
    manifest.record(
        GOOGLE_INTRA_MIGRATION, "Google",
        "intra-provider migration moves customers from AS15169 to AS396982",
    )
    manifest.record(
        _dt.date(2022, 3, 25), "Hetzner/Linode",
        "DNS and hosting migrations out of both networks begin",
    )
    manifest.record(
        _dt.date(2022, 3, 26), "sanctions",
        "paper's post-sanctions phase begins; cPanel and Cloudflare CA stop issuing",
    )
    manifest.record(
        _dt.date(2022, 4, 12), "Sedo/Amazon",
        "parked inventory ultimately relocates to Serverel (NL)",
    )
    manifest.record(
        _dt.date(2022, 4, 22), "OFAC",
        "General License 25 issued (no observable issuance change)",
    )
    if variant is not None:
        if variant.intensity != 1.0:
            manifest.record(
                CONFLICT_START, "counterfactual",
                f"scenario {config.scenario_id!r}: conflict-era migration "
                f"volumes scaled x{variant.intensity:g}",
            )
        for date, actor, description in variant.notes:
            manifest.record(date, actor, description)
    return manifest


def _peacetime_ca_specs() -> List[CaSpec]:
    """The CA mix with every conflict response stripped (no-invasion worlds)."""
    specs = _ca_specs()
    for spec in specs:
        spec.stop_date = None
        spec.leak_days = 0
        spec.leak_rate = 0.0
        spec.share_multiplier_post_conflict = 1.0
    return specs


def build_pki(world: World, config: ConflictScenarioConfig) -> PkiBundle:
    """Run the certificate simulation and attach it to the world."""
    variant = getattr(config, "variant", None)
    if variant is not None and not variant.conflict:
        # Peacetime: no CA pull-outs, no issuance drop, no sanctioned
        # reissuance rush, and the Russian state CA is never stood up.
        cert_config = CertSimConfig(
            seed=config.seed,
            scale_factor=config.scale_factor,
            ca_specs=_peacetime_ca_specs(),
            sanctioned_specs=[],
            daily_volume_post_conflict=130_000.0,
            russian_ca_cert_count=0,
            russian_ca_sanctioned_count=0,
            russian_ca_rf_count=0,
            russian_ca_external_count=0,
        )
    else:
        cert_config = CertSimConfig(
            seed=config.seed,
            scale_factor=config.scale_factor,
            ca_specs=_ca_specs(),
            sanctioned_specs=_sanctioned_specs(config),
        )
    bundle = simulate_pki(world, cert_config)
    world.pki = bundle
    return bundle


def build_scenario(config: Optional[ConflictScenarioConfig] = None) -> World:
    """Build the full scenario: world plus (optionally) the PKI bundle."""
    config = config or ConflictScenarioConfig()
    world = build_world(config)
    if config.with_pki:
        build_pki(world, config)
    return world
