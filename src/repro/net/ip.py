"""IPv4 address handling on plain integers.

The simulation stores addresses as unsigned 32-bit integers so they pack
into numpy arrays; these helpers convert to and from dotted-quad text and
perform basic validation.  (The standard-library :mod:`ipaddress` module
would also work, but object-per-address is too heavy for columnar use.)
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import AddressError

__all__ = [
    "MAX_IPV4",
    "parse_ipv4",
    "format_ipv4",
    "is_valid_ipv4_int",
    "parse_many",
    "format_many",
]

#: Largest representable IPv4 address as an integer (255.255.255.255).
MAX_IPV4 = 0xFFFFFFFF


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer.

    Rejects anything that is not exactly four decimal octets in ``0..255``
    (no leading-zero shorthand, no inet_aton-style single-integer forms).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format integer ``value`` as a dotted quad."""
    if not is_valid_ipv4_int(value):
        raise AddressError(f"not a 32-bit address: {value!r}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_valid_ipv4_int(value: object) -> bool:
    """True when ``value`` is an int in the 32-bit unsigned range."""
    return isinstance(value, int) and 0 <= value <= MAX_IPV4


def parse_many(texts: Iterable[str]) -> List[int]:
    """Parse an iterable of dotted quads."""
    return [parse_ipv4(text) for text in texts]


def format_many(values: Iterable[int]) -> List[str]:
    """Format an iterable of integer addresses."""
    return [format_ipv4(value) for value in values]
