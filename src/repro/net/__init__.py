"""IPv4 addressing, prefixes, routing, and AS metadata.

This subpackage is the simulation's equivalent of the address/routing layer
the paper relies on to map measured IP addresses to hosting networks.
"""

from .asn import ASInfo, ASRegistry
from .ip import MAX_IPV4, format_ipv4, format_many, is_valid_ipv4_int, parse_ipv4, parse_many
from .prefix import Prefix, PrefixAllocator, summarize
from .rib import Route, RoutingTable

__all__ = [
    "ASInfo",
    "ASRegistry",
    "MAX_IPV4",
    "format_ipv4",
    "format_many",
    "is_valid_ipv4_int",
    "parse_ipv4",
    "parse_many",
    "Prefix",
    "PrefixAllocator",
    "summarize",
    "Route",
    "RoutingTable",
]
