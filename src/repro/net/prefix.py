"""IPv4 prefixes and a sequential prefix allocator.

A :class:`Prefix` is an immutable CIDR block.  The :class:`PrefixAllocator`
hands out non-overlapping blocks from a parent prefix, which the provider
catalog uses to build each provider's address plan deterministically.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import AddressError, AllocationError
from .ip import MAX_IPV4, format_ipv4, parse_ipv4

__all__ = ["Prefix", "PrefixAllocator"]


class Prefix:
    """An immutable IPv4 CIDR prefix (network address + length)."""

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        if not 0 <= network <= MAX_IPV4:
            raise AddressError(f"network out of range: {network}")
        mask = Prefix.mask_for(length)
        if network & ~mask & MAX_IPV4:
            raise AddressError(
                f"host bits set in {format_ipv4(network)}/{length}"
            )
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    @staticmethod
    def mask_for(length: int) -> int:
        """Netmask integer for a prefix length."""
        if length == 0:
            return 0
        return (MAX_IPV4 << (32 - length)) & MAX_IPV4

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        try:
            addr_text, length_text = text.split("/")
        except ValueError as exc:
            raise AddressError(f"not CIDR notation: {text!r}") from exc
        if not length_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(parse_ipv4(addr_text), int(length_text))

    @property
    def first(self) -> int:
        """First address in the block (the network address)."""
        return self.network

    @property
    def last(self) -> int:
        """Last address in the block (the broadcast address for subnets)."""
        return self.network | (~self.mask_for(self.length) & MAX_IPV4)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this prefix."""
        return self.first <= address <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is fully inside this prefix."""
        return self.first <= other.first and other.last <= self.last

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two blocks share any address."""
        return self.first <= other.last and other.first <= self.last

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the subnets of this prefix at ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise AddressError(
                f"cannot split /{self.length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.first, self.last + 1, step):
            yield Prefix(network, new_length)

    def hosts(self) -> Iterator[int]:
        """Yield every address in the block (including network/broadcast).

        The simulation treats blocks as flat pools, so no addresses are
        reserved.
        """
        return iter(range(self.first, self.last + 1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


class PrefixAllocator:
    """Sequential, non-overlapping block allocator inside a parent prefix.

    Allocations are aligned to their own size (standard CIDR alignment), so
    the allocator may skip space when switching between block sizes.
    """

    def __init__(self, parent: Prefix) -> None:
        self._parent = parent
        self._cursor = parent.first
        self._allocated: List[Prefix] = []

    @property
    def parent(self) -> Prefix:
        """The block being carved up."""
        return self._parent

    @property
    def allocated(self) -> List[Prefix]:
        """Blocks handed out so far, in allocation order."""
        return list(self._allocated)

    def remaining(self) -> int:
        """Addresses left (ignoring alignment waste yet to come)."""
        return self._parent.last - self._cursor + 1

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free, size-aligned block of ``length``."""
        if length < self._parent.length or length > 32:
            raise AllocationError(
                f"cannot allocate /{length} from {self._parent}"
            )
        size = 1 << (32 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self._parent.last:
            raise AllocationError(
                f"{self._parent} exhausted allocating /{length}"
            )
        block = Prefix(aligned, length)
        self._cursor = aligned + size
        self._allocated.append(block)
        return block

    def allocate_sized(self, min_addresses: int) -> Prefix:
        """Allocate the smallest aligned block with >= ``min_addresses``."""
        if min_addresses < 1:
            raise AllocationError(f"need at least 1 address, got {min_addresses}")
        length = 32
        while length > 0 and (1 << (32 - length)) < min_addresses:
            length -= 1
        if (1 << (32 - length)) < min_addresses:
            raise AllocationError(f"no IPv4 block holds {min_addresses} addresses")
        return self.allocate(length)


def summarize(prefixes: List[Prefix]) -> Optional[Prefix]:
    """Smallest single prefix covering all inputs, or None for empty input."""
    if not prefixes:
        return None
    lo = min(p.first for p in prefixes)
    hi = max(p.last for p in prefixes)
    length = 32
    while length > 0:
        candidate = Prefix(lo & Prefix.mask_for(length), length)
        if candidate.first <= lo and hi <= candidate.last:
            return candidate
        length -= 1
    return Prefix(0, 0)
