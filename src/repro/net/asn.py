"""Autonomous-system registry: ASN -> (name, country, organisation).

The paper reports results per hosting network (e.g. Amazon AS16509, Sedo
AS47846, Cloudflare AS13335).  This registry is the simulation's equivalent
of an AS-to-organisation mapping such as CAIDA's AS2Org.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import AddressError

__all__ = ["ASInfo", "ASRegistry"]


class ASInfo:
    """Metadata for one autonomous system."""

    __slots__ = ("asn", "name", "country", "org")

    def __init__(self, asn: int, name: str, country: str, org: str) -> None:
        if asn < 0 or asn > 0xFFFFFFFF:
            raise AddressError(f"ASN out of range: {asn}")
        if len(country) != 2 or not country.isupper():
            raise AddressError(f"country must be ISO alpha-2, got {country!r}")
        self.asn = asn
        self.name = name
        self.country = country
        self.org = org

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASInfo):
            return NotImplemented
        return (
            self.asn == other.asn
            and self.name == other.name
            and self.country == other.country
            and self.org == other.org
        )

    def __repr__(self) -> str:
        return f"ASInfo(AS{self.asn}, {self.name!r}, {self.country})"


class ASRegistry:
    """A lookup table of :class:`ASInfo` records."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, ASInfo] = {}

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __iter__(self) -> Iterator[ASInfo]:
        return iter(sorted(self._by_asn.values(), key=lambda info: info.asn))

    def register(self, info: ASInfo) -> None:
        """Add or replace the record for ``info.asn``."""
        self._by_asn[info.asn] = info

    def register_all(self, infos: Iterable[ASInfo]) -> None:
        """Bulk :meth:`register`."""
        for info in infos:
            self.register(info)

    def get(self, asn: int) -> Optional[ASInfo]:
        """Record for ``asn`` or None."""
        return self._by_asn.get(asn)

    def name_of(self, asn: int) -> str:
        """Display name for ``asn`` (falls back to ``AS<number>``)."""
        info = self._by_asn.get(asn)
        return info.name if info is not None else f"AS{asn}"

    def country_of(self, asn: int) -> Optional[str]:
        """Registered country for ``asn`` or None."""
        info = self._by_asn.get(asn)
        return info.country if info is not None else None

    def asns_in_country(self, country: str) -> List[int]:
        """All ASNs registered to ``country``, ascending."""
        return sorted(
            info.asn for info in self._by_asn.values() if info.country == country
        )
