"""A longest-prefix-match routing information base (RIB).

Maps IPv4 prefixes to origin AS numbers the way the paper maps hosting and
name-server addresses to networks.  Lookup walks prefix lengths from /32
down to /0 with one dict probe per populated length, which is O(number of
distinct lengths) — fast and simple for simulation-scale tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import AddressError
from .ip import is_valid_ipv4_int
from .prefix import Prefix

__all__ = ["Route", "RoutingTable"]


class Route:
    """A single RIB entry: a prefix originated by an AS."""

    __slots__ = ("prefix", "origin_asn")

    def __init__(self, prefix: Prefix, origin_asn: int) -> None:
        self.prefix = prefix
        self.origin_asn = origin_asn

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return self.prefix == other.prefix and self.origin_asn == other.origin_asn

    def __hash__(self) -> int:
        return hash((self.prefix, self.origin_asn))

    def __repr__(self) -> str:
        return f"Route({self.prefix} -> AS{self.origin_asn})"


class RoutingTable:
    """Longest-prefix-match table from IPv4 address to origin ASN."""

    def __init__(self) -> None:
        # One dict per prefix length: network-int -> origin ASN.
        self._by_length: Dict[int, Dict[int, int]] = {}
        self._routes: Dict[Prefix, int] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def announce(self, prefix: Prefix, origin_asn: int) -> None:
        """Install (or replace) the route for ``prefix``."""
        if origin_asn < 0 or origin_asn > 0xFFFFFFFF:
            raise AddressError(f"ASN out of range: {origin_asn}")
        self._by_length.setdefault(prefix.length, {})[prefix.network] = origin_asn
        self._routes[prefix] = origin_asn

    def withdraw(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix``; missing routes are ignored."""
        level = self._by_length.get(prefix.length)
        if level is not None:
            level.pop(prefix.network, None)
            if not level:
                del self._by_length[prefix.length]
        self._routes.pop(prefix, None)

    def announce_all(self, routes: Iterable[Tuple[Prefix, int]]) -> None:
        """Bulk :meth:`announce`."""
        for prefix, asn in routes:
            self.announce(prefix, asn)

    def routes(self) -> List[Route]:
        """All installed routes, sorted by prefix."""
        return [Route(p, a) for p, a in sorted(self._routes.items())]

    def lookup(self, address: int) -> Optional[int]:
        """Origin ASN of the most-specific covering prefix, or None."""
        if not is_valid_ipv4_int(address):
            raise AddressError(f"not an IPv4 integer: {address!r}")
        for length in sorted(self._by_length, reverse=True):
            network = address & Prefix.mask_for(length)
            asn = self._by_length[length].get(network)
            if asn is not None:
                return asn
        return None

    def lookup_route(self, address: int) -> Optional[Route]:
        """Like :meth:`lookup` but returns the matched :class:`Route`."""
        if not is_valid_ipv4_int(address):
            raise AddressError(f"not an IPv4 integer: {address!r}")
        for length in sorted(self._by_length, reverse=True):
            network = address & Prefix.mask_for(length)
            asn = self._by_length[length].get(network)
            if asn is not None:
                return Route(Prefix(network, length), asn)
        return None

    def lookup_many(self, addresses: Iterable[int]) -> List[Optional[int]]:
        """Vector form of :meth:`lookup` (preserves order)."""
        return [self.lookup(address) for address in addresses]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Export as (starts, ends, asns) arrays sorted by range start.

        Only valid for non-overlapping tables (the simulation's address
        plans never nest prefixes across providers); used by the fast
        columnar collector for bulk mapping.
        """
        items = sorted(
            (prefix.first, prefix.last, asn)
            for prefix, asn in self._routes.items()
        )
        for (_, prev_end, _), (next_start, _, _) in zip(items, items[1:]):
            if next_start <= prev_end:
                raise AddressError(
                    "as_arrays requires a non-overlapping routing table"
                )
        if not items:
            empty = np.empty(0, dtype=np.uint32)
            return empty, empty.copy(), np.empty(0, dtype=np.int64)
        starts, ends, asns = zip(*items)
        return (
            np.asarray(starts, dtype=np.uint32),
            np.asarray(ends, dtype=np.uint32),
            np.asarray(asns, dtype=np.int64),
        )
