"""A CT monitor: tails logs and indexes entries matching a predicate.

This is the simulation's Censys: it watches one or more CT logs for
certificates whose CN/SAN match the studied TLDs and exposes the matched
set to the analysis layer.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, List, Optional, Sequence

from ..pki.certificate import Certificate
from ..pki.store import CertificateStore
from .log import CtLog, LogEntry

__all__ = ["CtMonitor"]


class CtMonitor:
    """Tails CT logs, retaining entries that satisfy a match predicate."""

    def __init__(
        self,
        logs: Sequence[CtLog],
        matcher: Optional[Callable[[Certificate], bool]] = None,
    ) -> None:
        self._logs = list(logs)
        self._matcher = matcher or (lambda _cert: True)
        self._cursor: Dict[str, int] = {log.log_id: 0 for log in self._logs}
        self._matched: List[LogEntry] = []
        self._store = CertificateStore()

    @property
    def store(self) -> CertificateStore:
        """The matched certificates as a queryable store."""
        return self._store

    def poll(self) -> int:
        """Fetch new entries from every log; returns the match count."""
        matched = 0
        for log in self._logs:
            start = self._cursor[log.log_id]
            size = len(log)
            if size <= start:
                continue
            for entry in log.get_entries(start, size - 1):
                if self._matcher(entry.certificate):
                    self._matched.append(entry)
                    self._store.add(entry.certificate)
                    matched += 1
            self._cursor[log.log_id] = size
        return matched

    def matched_entries(self) -> List[LogEntry]:
        """Every matched entry seen so far (log order per log)."""
        return list(self._matched)

    def entries_on(self, date: _dt.date) -> List[LogEntry]:
        """Matched entries whose log timestamp equals ``date``."""
        return [entry for entry in self._matched if entry.timestamp == date]

    def daily_issuer_matrix(self) -> Dict[str, Dict[_dt.date, int]]:
        """issuer organization -> {date: entries that day}.

        The raw material for the paper's Figure 8 dot timelines.
        """
        matrix: Dict[str, Dict[_dt.date, int]] = {}
        for entry in self._matched:
            org = entry.certificate.issuer.organization
            per_day = matrix.setdefault(org, {})
            per_day[entry.timestamp] = per_day.get(entry.timestamp, 0) + 1
        return matrix
