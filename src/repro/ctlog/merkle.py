"""RFC 6962 Merkle hash trees with inclusion and consistency proofs.

Leaf hashes are ``SHA-256(0x00 || leaf)`` and interior nodes
``SHA-256(0x01 || left || right)``.  Proof generation follows RFC 6962
section 2.1; verification follows the (equivalent, iterative) RFC 9162
algorithms.  Property-based tests exercise generation against
verification for arbitrary tree shapes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..errors import ProofError

__all__ = ["MerkleTree", "leaf_hash", "node_hash", "EMPTY_ROOT"]


def leaf_hash(data: bytes) -> bytes:
    """Hash of a leaf entry."""
    return hashlib.sha256(b"\x00" + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash of an interior node."""
    return hashlib.sha256(b"\x01" + left + right).digest()


#: Root hash of the empty tree (RFC 6962: SHA-256 of the empty string).
EMPTY_ROOT = hashlib.sha256(b"").digest()


def _largest_power_of_two_below(n: int) -> int:
    """The largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """An append-only Merkle tree over opaque byte entries."""

    def __init__(self) -> None:
        self._leaf_hashes: List[bytes] = []
        # Subtree hashes keyed by (start, end); ranges over an append-only
        # list never change, so the memo stays valid across appends.
        self._memo: Dict[Tuple[int, int], bytes] = {}

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self._leaf_hashes)

    def append(self, data: bytes) -> int:
        """Add a leaf; returns its index."""
        self._leaf_hashes.append(leaf_hash(data))
        return len(self._leaf_hashes) - 1

    def leaf(self, index: int) -> bytes:
        """The leaf *hash* at ``index``."""
        return self._leaf_hashes[index]

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _subtree(self, start: int, end: int) -> bytes:
        """MTH(D[start:end]) with memoisation."""
        count = end - start
        if count == 1:
            return self._leaf_hashes[start]
        key = (start, end)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        split = start + _largest_power_of_two_below(count)
        value = node_hash(self._subtree(start, split), self._subtree(split, end))
        self._memo[key] = value
        return value

    def root(self, size: Optional[int] = None) -> bytes:
        """Root hash of the first ``size`` leaves (default: all)."""
        n = self.size if size is None else size
        if n < 0 or n > self.size:
            raise ProofError(f"size {n} out of range (tree has {self.size})")
        if n == 0:
            return EMPTY_ROOT
        return self._subtree(0, n)

    # ------------------------------------------------------------------
    # Proof generation (RFC 6962 section 2.1)
    # ------------------------------------------------------------------

    def inclusion_proof(self, index: int, size: Optional[int] = None) -> List[bytes]:
        """Audit path for ``index`` within the first ``size`` leaves."""
        n = self.size if size is None else size
        if not 0 <= index < n or n > self.size:
            raise ProofError(f"index {index} not in tree of size {n}")
        return self._path(index, 0, n)

    def _path(self, m: int, start: int, end: int) -> List[bytes]:
        count = end - start
        if count == 1:
            return []
        k = _largest_power_of_two_below(count)
        if m < k:
            return self._path(m, start, start + k) + [self._subtree(start + k, end)]
        return self._path(m - k, start + k, end) + [self._subtree(start, start + k)]

    def consistency_proof(
        self, old_size: int, new_size: Optional[int] = None
    ) -> List[bytes]:
        """Proof that the first ``old_size`` leaves are a prefix."""
        n = self.size if new_size is None else new_size
        if not 0 < old_size <= n or n > self.size:
            raise ProofError(f"bad consistency range {old_size} -> {n}")
        if old_size == n:
            return []
        return self._subproof(old_size, 0, n, True)

    def _subproof(self, m: int, start: int, end: int, complete: bool) -> List[bytes]:
        count = end - start
        if m == count:
            return [] if complete else [self._subtree(start, end)]
        k = _largest_power_of_two_below(count)
        if m <= k:
            return self._subproof(m, start, start + k, complete) + [
                self._subtree(start + k, end)
            ]
        return self._subproof(m - k, start + k, end, False) + [
            self._subtree(start, start + k)
        ]

    # ------------------------------------------------------------------
    # Verification (RFC 9162 algorithms; static, no tree access)
    # ------------------------------------------------------------------

    @staticmethod
    def verify_inclusion(
        leaf: bytes, index: int, size: int, proof: List[bytes], root: bytes
    ) -> bool:
        """Check an audit path.  ``leaf`` is the leaf *hash*."""
        if index >= size or size < 1:
            return False
        fn, sn = index, size - 1
        result = leaf
        for value in proof:
            if sn == 0:
                return False
            if fn & 1 or fn == sn:
                result = node_hash(value, result)
                if not fn & 1:
                    while True:
                        fn >>= 1
                        sn >>= 1
                        if fn & 1 or fn == 0:
                            break
            else:
                result = node_hash(result, value)
            fn >>= 1
            sn >>= 1
        return sn == 0 and result == root

    @staticmethod
    def verify_consistency(
        old_size: int,
        new_size: int,
        old_root: bytes,
        new_root: bytes,
        proof: List[bytes],
    ) -> bool:
        """Check a consistency proof between two tree sizes."""
        if old_size > new_size or old_size < 0:
            return False
        if old_size == new_size:
            return not proof and old_root == new_root
        if old_size == 0:
            return not proof  # anything is consistent with the empty tree
        path = list(proof)
        if old_size & (old_size - 1) == 0:  # exact power of two
            path.insert(0, old_root)
        if not path:
            return False
        fn, sn = old_size - 1, new_size - 1
        while fn & 1:
            fn >>= 1
            sn >>= 1
        fr = sr = path[0]
        for value in path[1:]:
            if sn == 0:
                return False
            if fn & 1 or fn == sn:
                fr = node_hash(value, fr)
                sr = node_hash(value, sr)
                while fn != 0 and not fn & 1:
                    fn >>= 1
                    sn >>= 1
            else:
                sr = node_hash(sr, value)
            fn >>= 1
            sn >>= 1
        return fr == old_root and sr == new_root and sn == 0
