"""A Certificate Transparency log.

Accepts certificate chains, returns Signed Certificate Timestamps, and
serves entries, Signed Tree Heads, and Merkle proofs — the observable
surface Censys indexes and the paper's Section 4 consumes.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from typing import Dict, List, Optional

from ..errors import CtLogError
from ..pki.certificate import Certificate
from ..timeline import DateLike, as_date
from .merkle import MerkleTree

__all__ = ["SignedCertificateTimestamp", "SignedTreeHead", "LogEntry", "CtLog"]


class SignedCertificateTimestamp:
    """The log's promise to incorporate a certificate."""

    __slots__ = ("log_id", "timestamp", "leaf_index")

    def __init__(self, log_id: str, timestamp: _dt.date, leaf_index: int) -> None:
        self.log_id = log_id
        self.timestamp = timestamp
        self.leaf_index = leaf_index

    def __repr__(self) -> str:
        return f"SCT({self.log_id} #{self.leaf_index} @ {self.timestamp})"


class SignedTreeHead:
    """A snapshot of the log's Merkle state."""

    __slots__ = ("log_id", "tree_size", "root_hash", "timestamp")

    def __init__(
        self, log_id: str, tree_size: int, root_hash: bytes, timestamp: _dt.date
    ) -> None:
        self.log_id = log_id
        self.tree_size = tree_size
        self.root_hash = root_hash
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return f"STH({self.log_id} size={self.tree_size} @ {self.timestamp})"


class LogEntry:
    """One incorporated certificate."""

    __slots__ = ("index", "certificate", "timestamp")

    def __init__(self, index: int, certificate: Certificate, timestamp: _dt.date) -> None:
        self.index = index
        self.certificate = certificate
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return f"LogEntry(#{self.index} {self.certificate.subject_cn})"


class CtLog:
    """An append-only CT log over a Merkle tree."""

    def __init__(self, log_id: str) -> None:
        self.log_id = log_id
        self._tree = MerkleTree()
        self._entries: List[LogEntry] = []
        self._by_fingerprint: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tree(self) -> MerkleTree:
        """The underlying Merkle tree (for proof queries)."""
        return self._tree

    def add_chain(
        self, certificate: Certificate, submitted: DateLike
    ) -> SignedCertificateTimestamp:
        """Submit a certificate (with chain); idempotent per certificate."""
        if not certificate.chain() or certificate.chain()[-1] is not certificate.root():
            raise CtLogError("certificate has no valid chain")
        existing = self._by_fingerprint.get(certificate.fingerprint)
        timestamp = as_date(submitted)
        if existing is not None:
            return SignedCertificateTimestamp(
                self.log_id, self._entries[existing].timestamp, existing
            )
        index = self._tree.append(certificate.fingerprint.encode("ascii"))
        self._entries.append(LogEntry(index, certificate, timestamp))
        self._by_fingerprint[certificate.fingerprint] = index
        return SignedCertificateTimestamp(self.log_id, timestamp, index)

    def get_sth(self, at: Optional[DateLike] = None) -> SignedTreeHead:
        """The current STH (or as of ``at``, by timestamp)."""
        if at is None:
            size = self._tree.size
            timestamp = self._entries[-1].timestamp if self._entries else _dt.date.min
        else:
            boundary = as_date(at)
            size = sum(1 for entry in self._entries if entry.timestamp <= boundary)
            timestamp = boundary
        return SignedTreeHead(self.log_id, size, self._tree.root(size), timestamp)

    def get_entries(self, start: int, end: int) -> List[LogEntry]:
        """Entries in [start, end] inclusive, as the RFC's get-entries."""
        if start < 0 or end >= len(self._entries) or start > end:
            raise CtLogError(f"bad entry range [{start}, {end}]")
        return self._entries[start : end + 1]

    def entries(self) -> List[LogEntry]:
        """All entries in append order."""
        return list(self._entries)

    def inclusion_proof_for(self, certificate: Certificate) -> List[bytes]:
        """Audit path for a previously-submitted certificate."""
        index = self._by_fingerprint.get(certificate.fingerprint)
        if index is None:
            raise CtLogError(f"certificate not in log: {certificate!r}")
        return self._tree.inclusion_proof(index)

    def contains(self, certificate: Certificate) -> bool:
        """True when the certificate was incorporated."""
        return certificate.fingerprint in self._by_fingerprint
