"""Certificate Transparency substrate: Merkle trees, logs, monitor."""

from .log import CtLog, LogEntry, SignedCertificateTimestamp, SignedTreeHead
from .merkle import EMPTY_ROOT, MerkleTree, leaf_hash, node_hash
from .monitor import CtMonitor

__all__ = [
    "CtLog",
    "LogEntry",
    "SignedCertificateTimestamp",
    "SignedTreeHead",
    "EMPTY_ROOT",
    "MerkleTree",
    "leaf_hash",
    "node_hash",
    "CtMonitor",
]
