"""Resource-record sets: (name, type, TTL) plus one or more rdata."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import ZoneError
from .name import DomainName
from .rdata import Rdata, RRType

__all__ = ["RRset"]


class RRset:
    """A set of records sharing name, type, and TTL.

    Rdata order is preserved as inserted (the simulation does not model
    round-robin rotation) and duplicates are rejected.
    """

    __slots__ = ("name", "rtype", "ttl", "_rdatas")

    def __init__(
        self,
        name: DomainName,
        rtype: RRType,
        rdatas: Iterable[Rdata],
        ttl: int = 3600,
    ) -> None:
        if ttl < 0:
            raise ZoneError(f"negative TTL: {ttl}")
        materialised: List[Rdata] = []
        seen = set()
        for rdata in rdatas:
            if rdata.rtype is not rtype:
                raise ZoneError(
                    f"rdata type {rdata.rtype} does not match RRset type {rtype}"
                )
            if rdata in seen:
                raise ZoneError(f"duplicate rdata in RRset: {rdata!r}")
            seen.add(rdata)
            materialised.append(rdata)
        if not materialised:
            raise ZoneError(f"empty RRset for {name} {rtype}")
        if rtype in (RRType.CNAME, RRType.SOA) and len(materialised) > 1:
            raise ZoneError(f"{rtype} RRset must be a singleton at {name}")
        self.name = name
        self.rtype = rtype
        self.ttl = ttl
        self._rdatas: Tuple[Rdata, ...] = tuple(materialised)

    @property
    def rdatas(self) -> Tuple[Rdata, ...]:
        """The records, in insertion order."""
        return self._rdatas

    def __len__(self) -> int:
        return len(self._rdatas)

    def __iter__(self):
        return iter(self._rdatas)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRset):
            return NotImplemented
        return (
            self.name == other.name
            and self.rtype is other.rtype
            and self.ttl == other.ttl
            and set(self._rdatas) == set(other._rdatas)
        )

    def __repr__(self) -> str:
        return f"RRset({self.name} {self.ttl} {self.rtype} x{len(self)})"

    def merged_with(self, extra: Sequence[Rdata]) -> "RRset":
        """A new RRset with ``extra`` rdata appended (duplicates rejected)."""
        return RRset(self.name, self.rtype, self._rdatas + tuple(extra), self.ttl)

    def to_text_lines(self) -> List[str]:
        """Zone-file presentation lines, one per rdata."""
        return [
            f"{self.name}.\t{self.ttl}\tIN\t{self.rtype}\t{rdata.to_text()}"
            for rdata in self._rdatas
        ]
