"""Authoritative zones and a master-file style text format.

A :class:`Zone` owns every record at or below its origin, *except* below
delegation points: names under an in-zone NS cut belong to the child zone
(glue A records for the delegated name servers are the one exception, as in
real DNS).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ZoneError
from .name import DomainName
from .rdata import NS, SOA, RRType, parse_rdata
from .rrset import RRset

__all__ = ["Zone"]


class Zone:
    """One authoritative zone rooted at ``origin``."""

    def __init__(self, origin: DomainName, soa: SOA, default_ttl: int = 3600) -> None:
        self.origin = origin
        self.default_ttl = default_ttl
        self._nodes: Dict[DomainName, Dict[RRType, RRset]] = {}
        self.add(RRset(origin, RRType.SOA, [soa], default_ttl))

    @property
    def soa(self) -> SOA:
        """The zone's SOA record."""
        rrset = self._nodes[self.origin][RRType.SOA]
        soa = rrset.rdatas[0]
        assert isinstance(soa, SOA)
        return soa

    def __contains__(self, name: DomainName) -> bool:
        return name in self._nodes

    def node_names(self) -> List[DomainName]:
        """Every name with at least one RRset, in canonical order."""
        return sorted(self._nodes)

    def rrsets(self) -> Iterator[RRset]:
        """Every RRset in the zone, canonical name order, SOA first."""
        for name in self.node_names():
            node = self._nodes[name]
            for rtype in sorted(node, key=lambda t: t.value):
                yield node[rtype]

    def add(self, rrset: RRset) -> None:
        """Insert an RRset; merging with an existing set of same name/type."""
        if not rrset.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{rrset.name} is outside zone {self.origin}")
        node = self._nodes.setdefault(rrset.name, {})
        if rrset.rtype is RRType.CNAME and (set(node) - {RRType.CNAME}):
            raise ZoneError(f"CNAME cannot coexist with other data at {rrset.name}")
        if RRType.CNAME in node and rrset.rtype is not RRType.CNAME:
            raise ZoneError(f"other data cannot coexist with CNAME at {rrset.name}")
        existing = node.get(rrset.rtype)
        if existing is None:
            node[rrset.rtype] = rrset
        else:
            node[rrset.rtype] = existing.merged_with(rrset.rdatas)

    def remove(self, name: DomainName, rtype: Optional[RRType] = None) -> None:
        """Remove one RRset (or, with ``rtype=None``, the whole node)."""
        if name == self.origin and rtype in (None, RRType.SOA):
            raise ZoneError("cannot remove the zone SOA")
        node = self._nodes.get(name)
        if node is None:
            return
        if rtype is None:
            del self._nodes[name]
            return
        node.pop(rtype, None)
        if not node:
            del self._nodes[name]

    def get(self, name: DomainName, rtype: RRType) -> Optional[RRset]:
        """Exact-match lookup (no delegation logic — see the server)."""
        node = self._nodes.get(name)
        return node.get(rtype) if node else None

    def node(self, name: DomainName) -> Dict[RRType, RRset]:
        """All RRsets at ``name`` (empty dict when absent)."""
        return dict(self._nodes.get(name, {}))

    def delegation_for(self, qname: DomainName) -> Optional[RRset]:
        """The NS cut covering ``qname``, if any (closest ancestor first).

        The zone origin's own NS set is *authoritative* data, not a cut,
        so it is skipped.
        """
        best: Optional[RRset] = None
        for ancestor in qname.ancestors():
            if ancestor == self.origin or not ancestor.is_subdomain_of(self.origin):
                break
            node = self._nodes.get(ancestor)
            if node and RRType.NS in node:
                best = node[RRType.NS]  # keep walking up: want closest to origin?
        # The *closest enclosing* cut from the query's perspective is the
        # deepest one, but real servers answer from the first cut met when
        # walking down from the origin; with single-level delegations
        # (registry zones) both coincide.  We return the highest cut.
        return best

    def delegations(self) -> Iterator[RRset]:
        """Every NS cut in the zone (excluding the origin's apex NS)."""
        for name in self.node_names():
            if name == self.origin:
                continue
            node = self._nodes[name]
            if RRType.NS in node:
                yield node[RRType.NS]

    def glue_for(self, ns_rrset: RRset) -> List[RRset]:
        """In-zone A records for the targets of an NS RRset."""
        glue: List[RRset] = []
        for rdata in ns_rrset:
            assert isinstance(rdata, NS)
            if rdata.target.is_subdomain_of(self.origin):
                a_rrset = self.get(rdata.target, RRType.A)
                if a_rrset is not None:
                    glue.append(a_rrset)
        return glue

    # ------------------------------------------------------------------
    # Master-file style serialisation
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        """Serialise to a simplified master-file format."""
        lines = [f"$ORIGIN {self.origin}.", f"$TTL {self.default_ttl}"]
        for rrset in self.rrsets():
            lines.extend(rrset.to_text_lines())
        return "\n".join(lines) + "\n"

    @staticmethod
    def _strip_comment(raw: str) -> str:
        """Drop a ``;`` comment, but not inside a quoted string."""
        in_quote = False
        position = 0
        while position < len(raw):
            char = raw[position]
            if char == '"':
                in_quote = not in_quote
            elif char == "\\" and in_quote:
                position += 1  # skip the escaped character
            elif char == ";" and not in_quote:
                return raw[:position]
            position += 1
        return raw

    @classmethod
    def from_text(cls, text: str) -> "Zone":
        """Parse the output of :meth:`to_text`."""
        origin: Optional[DomainName] = None
        default_ttl = 3600
        pending: List[Tuple[DomainName, int, RRType, str]] = []
        for raw in text.splitlines():
            line = cls._strip_comment(raw).strip()
            if not line:
                continue
            if line.startswith("$ORIGIN"):
                origin = DomainName.parse(line.split()[1])
                continue
            if line.startswith("$TTL"):
                default_ttl = int(line.split()[1])
                continue
            fields = line.split("\t")
            if len(fields) < 5:
                fields = line.split(None, 4)
            if len(fields) != 5:
                raise ZoneError(f"unparseable zone line: {raw!r}")
            name_text, ttl_text, klass, rtype_text, rdata_text = fields
            if klass != "IN":
                raise ZoneError(f"unsupported class {klass!r}")
            pending.append(
                (
                    DomainName.parse(name_text),
                    int(ttl_text),
                    RRType[rtype_text],
                    rdata_text,
                )
            )
        if origin is None:
            raise ZoneError("zone text lacks $ORIGIN")
        soa_entries = [p for p in pending if p[2] is RRType.SOA]
        if len(soa_entries) != 1 or soa_entries[0][0] != origin:
            raise ZoneError("zone text must contain exactly one SOA at the origin")
        soa = parse_rdata(RRType.SOA, soa_entries[0][3])
        assert isinstance(soa, SOA)
        zone = cls(origin, soa, default_ttl)
        for name, ttl, rtype, rdata_text in pending:
            if rtype is RRType.SOA:
                continue
            zone.add(RRset(name, rtype, [parse_rdata(rtype, rdata_text)], ttl))
        return zone

    def bump_serial(self) -> None:
        """Increment the SOA serial (zone was modified)."""
        old = self.soa
        new = SOA(
            old.mname,
            old.rname,
            old.serial + 1,
            old.refresh,
            old.retry,
            old.expire,
            old.minimum,
        )
        node = self._nodes[self.origin]
        node[RRType.SOA] = RRset(self.origin, RRType.SOA, [new], self.default_ttl)

    def names_delegated(self) -> List[DomainName]:
        """Names of all delegation points (registry 'registered domains')."""
        return sorted(rrset.name for rrset in self.delegations())
