"""The simulated network joining resolvers to authoritative servers.

Servers are reachable by IPv4 address.  Addresses can be taken down (to
model outages, e.g. the March 22, 2021 measurement dip) or remapped when a
provider renumbers (the Netnod event).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import ResolutionError
from ..net.ip import format_ipv4, is_valid_ipv4_int
from .message import Message, Question
from .server import AuthoritativeServer

__all__ = ["NetworkUnreachable", "SimulatedNetwork"]


class NetworkUnreachable(ResolutionError):
    """No server answers at the queried address (timeout in real life)."""


class SimulatedNetwork:
    """Address-to-server switchboard with query accounting."""

    def __init__(self) -> None:
        self._servers: Dict[int, AuthoritativeServer] = {}
        self._down: Set[int] = set()
        self.queries_sent = 0

    def attach(self, address: int, server: AuthoritativeServer) -> None:
        """Make ``server`` answer queries to ``address``."""
        if not is_valid_ipv4_int(address):
            raise ResolutionError(f"bad server address: {address!r}")
        self._servers[address] = server

    def detach(self, address: int) -> None:
        """Remove whatever answers at ``address``."""
        self._servers.pop(address, None)

    def server_at(self, address: int) -> Optional[AuthoritativeServer]:
        """The server currently bound to ``address`` (even if down)."""
        return self._servers.get(address)

    def addresses(self) -> List[int]:
        """All bound addresses, ascending."""
        return sorted(self._servers)

    def set_down(self, address: int, down: bool = True) -> None:
        """Mark an address unreachable (or reachable again)."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_down(self, address: int) -> bool:
        """True when the address is currently marked unreachable."""
        return address in self._down

    def query(self, address: int, question: Question) -> Message:
        """Deliver ``question`` to the server at ``address``."""
        self.queries_sent += 1
        if address in self._down or address not in self._servers:
            raise NetworkUnreachable(
                f"no answer from {format_ipv4(address)} for {question!r}"
            )
        return self._servers[address].query(question)

    def transfer(self, address: int, origin) -> list:
        """Perform an AXFR against the server at ``address``."""
        self.queries_sent += 1
        if address in self._down or address not in self._servers:
            raise NetworkUnreachable(
                f"no answer from {format_ipv4(address)} for AXFR {origin}"
            )
        return self._servers[address].axfr(origin)
