"""A TTL-respecting resolver cache on the simulation's day clock.

OpenINTEL resolves each domain fresh every day; within one day's sweep a
cache avoids re-walking the hierarchy for every name under the same TLD.
TTLs are expressed in seconds and converted to whole days (floor, minimum
the same day), which matches a once-a-day measurement cadence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..timeline import DayClock
from .message import Rcode
from .name import DomainName
from .rdata import RRType
from .rrset import RRset

__all__ = ["CacheEntry", "CacheStats", "ResolverCache"]

_SECONDS_PER_DAY = 86400


class CacheStats:
    """Hit/miss counters for one measurement day (or any window)."""

    __slots__ = ("hits", "misses")

    def __init__(self, hits: int = 0, misses: int = 0) -> None:
        self.hits = hits
        self.misses = misses

    @property
    def total(self) -> int:
        """Number of lookups counted."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1] (0.0 when nothing was looked up)."""
        return self.hits / self.total if self.total else 0.0

    def __repr__(self) -> str:
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


class CacheEntry:
    """One cached positive or negative answer."""

    __slots__ = ("rrset", "rcode", "expires_day")

    def __init__(self, rrset: Optional[RRset], rcode: Rcode, expires_day: int) -> None:
        self.rrset = rrset
        self.rcode = rcode
        self.expires_day = expires_day

    @property
    def is_negative(self) -> bool:
        """True for cached NXDOMAIN / NODATA."""
        return self.rrset is None

    def __repr__(self) -> str:
        kind = "neg" if self.is_negative else "pos"
        return f"CacheEntry({kind}, {self.rcode}, until day {self.expires_day})"


class ResolverCache:
    """(name, type) -> :class:`CacheEntry`, expired lazily against a clock."""

    def __init__(self, clock: DayClock) -> None:
        self._clock = clock
        self._entries: Dict[Tuple[DomainName, RRType], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        #: One :class:`CacheStats` per completed day (appended by flush()).
        self.day_stats: List[CacheStats] = []

    def __len__(self) -> int:
        return len(self._entries)

    def _expiry_day(self, ttl_seconds: int) -> int:
        return self._clock.day + max(0, ttl_seconds // _SECONDS_PER_DAY)

    def put_positive(self, rrset: RRset) -> None:
        """Cache a positive answer for its TTL."""
        self._entries[(rrset.name, rrset.rtype)] = CacheEntry(
            rrset, Rcode.NOERROR, self._expiry_day(rrset.ttl)
        )

    def put_negative(
        self, name: DomainName, rtype: RRType, rcode: Rcode, ttl_seconds: int = 3600
    ) -> None:
        """Cache NXDOMAIN or NODATA."""
        self._entries[(name, rtype)] = CacheEntry(
            None, rcode, self._expiry_day(ttl_seconds)
        )

    def get(self, name: DomainName, rtype: RRType) -> Optional[CacheEntry]:
        """Fresh entry for (name, type), or None; counts hit/miss stats."""
        key = (name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.expires_day < self._clock.day:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def stats(self) -> CacheStats:
        """The counters accumulated since the last flush."""
        return CacheStats(self.hits, self.misses)

    def flush(self) -> CacheStats:
        """Drop everything (start of a new measurement day).

        Rolls the current hit/miss counters into :attr:`day_stats` and
        resets them, so per-day hit rates never bleed across days, and
        returns the closed day's stats.
        """
        closed = self.stats()
        self.day_stats.append(closed)
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        return closed
