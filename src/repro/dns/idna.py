"""Punycode (RFC 3492) and minimal IDNA encoding, implemented from scratch.

The paper's subject includes the internationalised ccTLD ``.рф``, whose
A-label form is ``xn--p1ai``.  The registry, zones, and analysis all work on
A-labels; this module converts between Unicode labels (U-labels) and their
ASCII-compatible encoding.

Only the pieces of IDNA the simulation needs are implemented: lowercasing
plus Punycode with the ``xn--`` prefix.  The full nameprep/UTS46 mapping
tables are out of scope (and unnecessary for the synthetic names we
generate), but the Punycode codec itself is complete and round-trips any
Unicode label, verified against RFC 3492's published test vectors.
"""

from __future__ import annotations

from ..errors import PunycodeError

__all__ = [
    "ACE_PREFIX",
    "punycode_encode",
    "punycode_decode",
    "encode_label",
    "decode_label",
    "to_ascii",
    "to_unicode",
]

#: ASCII-compatible-encoding prefix marking an IDNA label.
ACE_PREFIX = "xn--"

# RFC 3492 section 5 parameter values.
_BASE = 36
_TMIN = 1
_TMAX = 26
_SKEW = 38
_DAMP = 700
_INITIAL_BIAS = 72
_INITIAL_N = 128
_DELIMITER = "-"
_MAXINT = 0x7FFFFFFF


def _adapt(delta: int, numpoints: int, firsttime: bool) -> int:
    """Bias adaptation function (RFC 3492 section 6.1)."""
    delta = delta // _DAMP if firsttime else delta // 2
    delta += delta // numpoints
    k = 0
    while delta > ((_BASE - _TMIN) * _TMAX) // 2:
        delta //= _BASE - _TMIN
        k += _BASE
    return k + (((_BASE - _TMIN + 1) * delta) // (delta + _SKEW))


def _encode_digit(digit: int) -> str:
    """Map 0..35 to 'a'..'z', '0'..'9'."""
    if 0 <= digit <= 25:
        return chr(ord("a") + digit)
    if 26 <= digit <= 35:
        return chr(ord("0") + digit - 26)
    raise PunycodeError(f"digit out of range: {digit}")


def _decode_digit(char: str) -> int:
    """Inverse of :func:`_encode_digit`; accepts upper case too."""
    code = ord(char)
    if ord("a") <= code <= ord("z"):
        return code - ord("a")
    if ord("A") <= code <= ord("Z"):
        return code - ord("A")
    if ord("0") <= code <= ord("9"):
        return code - ord("0") + 26
    raise PunycodeError(f"invalid punycode digit: {char!r}")


def punycode_encode(text: str) -> str:
    """Encode a Unicode string as a Punycode ASCII string (RFC 3492 6.3)."""
    codepoints = [ord(ch) for ch in text]
    output = [ch for ch in text if ord(ch) < 0x80]
    basic_count = len(output)
    handled = basic_count
    if basic_count:
        output.append(_DELIMITER)

    n = _INITIAL_N
    delta = 0
    bias = _INITIAL_BIAS
    total = len(codepoints)

    while handled < total:
        candidates = [cp for cp in codepoints if cp >= n]
        m = min(candidates)
        if (m - n) > (_MAXINT - delta) // (handled + 1):
            raise PunycodeError("punycode overflow")
        delta += (m - n) * (handled + 1)
        n = m
        for cp in codepoints:
            if cp < n:
                delta += 1
                if delta > _MAXINT:
                    raise PunycodeError("punycode overflow")
            elif cp == n:
                q = delta
                k = _BASE
                while True:
                    if k <= bias:
                        threshold = _TMIN
                    elif k >= bias + _TMAX:
                        threshold = _TMAX
                    else:
                        threshold = k - bias
                    if q < threshold:
                        break
                    output.append(
                        _encode_digit(threshold + (q - threshold) % (_BASE - threshold))
                    )
                    q = (q - threshold) // (_BASE - threshold)
                    k += _BASE
                output.append(_encode_digit(q))
                bias = _adapt(delta, handled + 1, handled == basic_count)
                delta = 0
                handled += 1
        delta += 1
        n += 1

    return "".join(output)


def punycode_decode(text: str) -> str:
    """Decode a Punycode ASCII string back to Unicode (RFC 3492 6.2)."""
    for ch in text:
        if ord(ch) >= 0x80:
            raise PunycodeError(f"non-ASCII input to punycode decoder: {text!r}")

    last_delim = text.rfind(_DELIMITER)
    if last_delim > 0:
        output = [ord(ch) for ch in text[:last_delim]]
        encoded = text[last_delim + 1 :]
    else:
        output = []
        encoded = text[last_delim + 1 :] if last_delim == 0 else text

    n = _INITIAL_N
    i = 0
    bias = _INITIAL_BIAS
    pos = 0

    while pos < len(encoded):
        old_i = i
        weight = 1
        k = _BASE
        while True:
            if pos >= len(encoded):
                raise PunycodeError(f"truncated punycode: {text!r}")
            digit = _decode_digit(encoded[pos])
            pos += 1
            if digit > (_MAXINT - i) // weight:
                raise PunycodeError("punycode overflow")
            i += digit * weight
            if k <= bias:
                threshold = _TMIN
            elif k >= bias + _TMAX:
                threshold = _TMAX
            else:
                threshold = k - bias
            if digit < threshold:
                break
            if weight > _MAXINT // (_BASE - threshold):
                raise PunycodeError("punycode overflow")
            weight *= _BASE - threshold
            k += _BASE
        bias = _adapt(i - old_i, len(output) + 1, old_i == 0)
        if i // (len(output) + 1) > _MAXINT - n:
            raise PunycodeError("punycode overflow")
        n += i // (len(output) + 1)
        i %= len(output) + 1
        if n < 0x80:
            raise PunycodeError(f"basic code point encoded as extended: {text!r}")
        output.insert(i, n)
        i += 1

    return "".join(chr(cp) for cp in output)


def encode_label(label: str) -> str:
    """Convert one label to its A-label (ASCII) form, lowercased."""
    if not label:
        raise PunycodeError("empty label")
    lowered = label.lower()
    if all(ord(ch) < 0x80 for ch in lowered):
        return lowered
    encoded = ACE_PREFIX + punycode_encode(lowered)
    if len(encoded) > 63:
        raise PunycodeError(f"A-label longer than 63 octets: {encoded!r}")
    return encoded


def decode_label(label: str) -> str:
    """Convert one A-label back to its U-label (Unicode) form."""
    lowered = label.lower()
    if not lowered.startswith(ACE_PREFIX):
        return lowered
    return punycode_decode(lowered[len(ACE_PREFIX) :])


def to_ascii(name: str) -> str:
    """Convert a dotted domain name to A-label form."""
    if not name:
        return name
    trailing_dot = name.endswith(".")
    body = name[:-1] if trailing_dot else name
    encoded = ".".join(encode_label(label) for label in body.split("."))
    return encoded + "." if trailing_dot else encoded


def to_unicode(name: str) -> str:
    """Convert a dotted domain name to U-label form."""
    if not name:
        return name
    trailing_dot = name.endswith(".")
    body = name[:-1] if trailing_dot else name
    decoded = ".".join(decode_label(label) for label in body.split("."))
    return decoded + "." if trailing_dot else decoded
