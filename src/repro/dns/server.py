"""Authoritative name servers over in-memory zones.

Implements the answer logic an authoritative-only server needs: exact
answers, CNAMEs (returned, not chased), referrals with glue, NXDOMAIN, and
REFUSED for out-of-zone questions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ZoneError
from .message import Message, Question, Rcode
from .name import DomainName
from .rdata import RRType
from .rrset import RRset
from .zone import Zone

__all__ = ["AuthoritativeServer"]


class AuthoritativeServer:
    """A server authoritative for one or more zones."""

    def __init__(self, identity: str) -> None:
        self.identity = identity
        self._zones: Dict[DomainName, Zone] = {}
        #: Zone origins for which AXFR is permitted (registry data-sharing
        #: agreements, as OpenINTEL has with TLD operators).
        self._axfr_allowed: set = set()

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.identity!r}, zones={len(self._zones)})"

    @property
    def zones(self) -> List[Zone]:
        """Hosted zones, sorted by origin."""
        return [self._zones[name] for name in sorted(self._zones)]

    def attach_zone(self, zone: Zone) -> None:
        """Serve ``zone``; replaces any previous zone with the same origin."""
        self._zones[zone.origin] = zone

    def detach_zone(self, origin: DomainName) -> None:
        """Stop serving the zone at ``origin``."""
        self._zones.pop(origin, None)

    def allow_axfr(self, origin: DomainName) -> None:
        """Permit zone transfers of the zone at ``origin``."""
        self._axfr_allowed.add(origin)

    def axfr(self, origin: DomainName) -> List["RRset"]:
        """Transfer a zone: every RRset, SOA first (RFC 5936 shape).

        Raises :class:`ZoneError` when the zone is absent or transfers
        are not permitted (real servers answer REFUSED).
        """
        zone = self._zones.get(origin)
        if zone is None:
            raise ZoneError(f"{self.identity} is not authoritative for {origin}")
        if origin not in self._axfr_allowed:
            raise ZoneError(f"{self.identity} refuses AXFR of {origin}")
        return list(zone.rrsets())

    def zone_for(self, qname: DomainName) -> Optional[Zone]:
        """Most-specific hosted zone enclosing ``qname``."""
        for ancestor in qname.ancestors():
            zone = self._zones.get(ancestor)
            if zone is not None:
                return zone
        return None

    def query(self, question: Question) -> Message:
        """Answer ``question`` as an authoritative-only server would."""
        zone = self.zone_for(question.qname)
        if zone is None:
            return Message(question, rcode=Rcode.REFUSED)

        # Delegation below us? Hand out a referral with glue.  (A query for
        # the NS set of the cut itself is also answered as a referral, as
        # real parent-side servers do.)
        cut = zone.delegation_for(question.qname)
        if cut is not None:
            return Message(
                question,
                rcode=Rcode.NOERROR,
                authorities=[cut],
                additionals=zone.glue_for(cut),
                aa=False,
            )

        node = zone.node(question.qname)
        if not node:
            # Empty non-terminal (an existing name's ancestor) is NOERROR,
            # a truly unknown name is NXDOMAIN.
            if self._has_descendants(zone, question.qname):
                return Message(question, rcode=Rcode.NOERROR, aa=True)
            return Message(question, rcode=Rcode.NXDOMAIN, aa=True)

        exact = node.get(question.qtype)
        if exact is not None:
            return Message(question, rcode=Rcode.NOERROR, answers=[exact], aa=True)

        alias = node.get(RRType.CNAME)
        if alias is not None and question.qtype is not RRType.CNAME:
            return Message(question, rcode=Rcode.NOERROR, answers=[alias], aa=True)

        return Message(question, rcode=Rcode.NOERROR, aa=True)  # NODATA

    @staticmethod
    def _has_descendants(zone: Zone, name: DomainName) -> bool:
        """True when any zone node sits strictly below ``name``."""
        return any(
            node_name != name and node_name.is_subdomain_of(name)
            for node_name in zone.node_names()
        )

    def validate(self) -> None:
        """Sanity-check hosted zones (no nested origins inside one server).

        Hosting both a parent and its child zone on one server is legal in
        DNS but ambiguous for this simulation's simple matcher when a
        delegation also exists; reject early instead of answering wrongly.
        """
        origins = sorted(self._zones)
        for i, parent in enumerate(origins):
            for child in origins[i + 1 :]:
                if child != parent and child.is_subdomain_of(parent):
                    parent_zone = self._zones[parent]
                    if any(
                        cut.name == child for cut in parent_zone.delegations()
                    ):
                        raise ZoneError(
                            f"server {self.identity} hosts both {parent} and "
                            f"its delegated child {child}"
                        )
