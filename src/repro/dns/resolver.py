"""An iterative (recursive-resolver style) DNS resolver.

This is the measurement pipeline's "honest" path: it starts from root
hints, follows referrals with glue, resolves glueless name servers
out-of-band, chases CNAME chains, and caches both positive and negative
answers on the simulation's day clock — the same walk OpenINTEL's
measurement infrastructure performs for every domain every day.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ResolutionError, ServfailError
from ..timeline import DayClock
from .cache import ResolverCache
from .message import Message, Question, Rcode
from .name import DomainName, ROOT
from .network import NetworkUnreachable, SimulatedNetwork
from .rdata import A, CNAME, NS, RRType
from .rrset import RRset

__all__ = ["ResolutionResult", "IterativeResolver"]

_MAX_REFERRALS = 32
_MAX_DEPTH = 8


class ResolutionResult:
    """Outcome of one resolution."""

    __slots__ = ("qname", "qtype", "rcode", "rrset", "cname_chain")

    def __init__(
        self,
        qname: DomainName,
        qtype: RRType,
        rcode: Rcode,
        rrset: Optional[RRset] = None,
        cname_chain: Optional[List[DomainName]] = None,
    ) -> None:
        self.qname = qname
        self.qtype = qtype
        self.rcode = rcode
        self.rrset = rrset
        self.cname_chain = list(cname_chain or [])

    @property
    def ok(self) -> bool:
        """True when a non-empty answer of the requested type was found."""
        return self.rcode is Rcode.NOERROR and self.rrset is not None

    def addresses(self) -> List[int]:
        """Integer addresses when the answer is an A RRset (else empty)."""
        if self.rrset is None or self.rrset.rtype is not RRType.A:
            return []
        return [rdata.address for rdata in self.rrset if isinstance(rdata, A)]

    def ns_targets(self) -> List[DomainName]:
        """NS target names when the answer is an NS RRset (else empty)."""
        if self.rrset is None or self.rrset.rtype is not RRType.NS:
            return []
        return [rdata.target for rdata in self.rrset if isinstance(rdata, NS)]

    def __repr__(self) -> str:
        return f"ResolutionResult({self.qname} {self.qtype} {self.rcode})"


class IterativeResolver:
    """Walks the simulated DNS hierarchy from the root hints down."""

    def __init__(
        self,
        network: SimulatedNetwork,
        root_addresses: Sequence[int],
        clock: Optional[DayClock] = None,
        cache: Optional[ResolverCache] = None,
    ) -> None:
        if not root_addresses:
            raise ResolutionError("resolver needs at least one root address")
        self._network = network
        self._roots = list(root_addresses)
        self._clock = clock or DayClock()
        self._cache = cache or ResolverCache(self._clock)

    @property
    def cache(self) -> ResolverCache:
        """The resolver's shared cache."""
        return self._cache

    @property
    def clock(self) -> DayClock:
        """The clock TTLs are evaluated against."""
        return self._clock

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def resolve(self, qname: DomainName, qtype: RRType) -> ResolutionResult:
        """Resolve ``qname``/``qtype``, following CNAMEs."""
        return self._resolve(qname, qtype, depth=0)

    def resolve_addresses(self, qname: DomainName) -> ResolutionResult:
        """Convenience: resolve the A records for ``qname``."""
        return self.resolve(qname, RRType.A)

    # ------------------------------------------------------------------
    # Core walk
    # ------------------------------------------------------------------

    def _resolve(
        self, qname: DomainName, qtype: RRType, depth: int
    ) -> ResolutionResult:
        if depth > _MAX_DEPTH:
            raise ServfailError(f"resolution depth exceeded at {qname} {qtype}")

        cached = self._cache.get(qname, qtype)
        if cached is not None:
            if cached.is_negative:
                return ResolutionResult(qname, qtype, cached.rcode)
            return ResolutionResult(qname, qtype, Rcode.NOERROR, cached.rrset)

        servers = self._closest_cached_servers(qname)
        cname_chain: List[DomainName] = []
        current_name = qname

        for _ in range(_MAX_REFERRALS):
            response = self._query_any(servers, Question(current_name, qtype))

            if response.rcode is Rcode.NXDOMAIN:
                self._cache.put_negative(current_name, qtype, Rcode.NXDOMAIN)
                return ResolutionResult(qname, qtype, Rcode.NXDOMAIN, None, cname_chain)
            if response.rcode is not Rcode.NOERROR:
                raise ServfailError(
                    f"{response.rcode} from upstream for {current_name} {qtype}"
                )

            answer = self._extract_answer(response, current_name, qtype)
            if answer is not None:
                self._cache.put_positive(answer)
                return ResolutionResult(
                    qname, qtype, Rcode.NOERROR, answer, cname_chain
                )

            alias = self._extract_cname(response, current_name)
            if alias is not None and qtype is not RRType.CNAME:
                self._cache.put_positive(alias)
                target = alias.rdatas[0]
                assert isinstance(target, CNAME)
                cname_chain.append(target.target)
                if len(cname_chain) > _MAX_DEPTH:
                    raise ServfailError(f"CNAME chain too long from {qname}")
                if target.target in (qname, *cname_chain[:-1]):
                    raise ServfailError(f"CNAME loop at {qname}")
                tail = self._resolve(target.target, qtype, depth + 1)
                return ResolutionResult(
                    qname, qtype, tail.rcode, tail.rrset, cname_chain + tail.cname_chain
                )

            if response.is_referral:
                servers = self._follow_referral(response, depth)
                continue

            # NODATA: the name exists but has no records of this type.
            self._cache.put_negative(current_name, qtype, Rcode.NOERROR)
            return ResolutionResult(qname, qtype, Rcode.NOERROR, None, cname_chain)

        raise ServfailError(f"referral limit exceeded resolving {qname} {qtype}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _query_any(self, servers: Sequence[int], question: Question) -> Message:
        """Ask each candidate server until one answers usefully."""
        last_error: Optional[Exception] = None
        for address in servers:
            try:
                response = self._network.query(address, question)
            except NetworkUnreachable as exc:
                last_error = exc
                continue
            if response.rcode is Rcode.REFUSED:
                last_error = ServfailError(
                    f"REFUSED for {question!r} from server at {address}"
                )
                continue
            return response
        raise ServfailError(
            f"no server answered {question!r}"
        ) from last_error

    @staticmethod
    def _extract_answer(
        response: Message, qname: DomainName, qtype: RRType
    ) -> Optional[RRset]:
        for rrset in response.answers:
            if rrset.name == qname and rrset.rtype is qtype:
                return rrset
        return None

    @staticmethod
    def _extract_cname(response: Message, qname: DomainName) -> Optional[RRset]:
        for rrset in response.answers:
            if rrset.name == qname and rrset.rtype is RRType.CNAME:
                return rrset
        return None

    def _follow_referral(self, response: Message, depth: int) -> List[int]:
        """Turn a referral into the next hop's server address list."""
        ns_rrset = next(
            rrset for rrset in response.authorities if rrset.rtype is RRType.NS
        )
        self._cache.put_positive(ns_rrset)

        glue: dict = {}
        for rrset in response.additionals:
            if rrset.rtype is RRType.A:
                self._cache.put_positive(rrset)
                glue[rrset.name] = [
                    rdata.address for rdata in rrset if isinstance(rdata, A)
                ]

        addresses: List[int] = []
        glueless: List[DomainName] = []
        for rdata in ns_rrset:
            assert isinstance(rdata, NS)
            if rdata.target in glue:
                addresses.extend(glue[rdata.target])
            else:
                glueless.append(rdata.target)

        # Resolve glueless NS names out-of-band, but never chase a target
        # *inside* the zone being delegated without glue (unresolvable).
        for target in glueless:
            if addresses:
                break  # one reachable address per hop is enough for the walk
            if target.is_subdomain_of(ns_rrset.name):
                continue
            try:
                result = self._resolve(target, RRType.A, depth + 1)
            except ResolutionError:
                continue
            addresses.extend(result.addresses())

        if not addresses:
            raise ServfailError(
                f"referral to {ns_rrset.name} has no resolvable name servers"
            )
        return addresses

    def _closest_cached_servers(self, qname: DomainName) -> List[int]:
        """Start the walk at the deepest cached zone cut covering ``qname``."""
        for ancestor in qname.ancestors():
            if ancestor == ROOT:
                break
            entry = self._cache.get(ancestor, RRType.NS)
            if entry is None or entry.is_negative or entry.rrset is None:
                continue
            addresses: List[int] = []
            for rdata in entry.rrset:
                assert isinstance(rdata, NS)
                glue_entry = self._cache.get(rdata.target, RRType.A)
                if glue_entry is not None and glue_entry.rrset is not None:
                    addresses.extend(
                        rd.address for rd in glue_entry.rrset if isinstance(rd, A)
                    )
            if addresses:
                return addresses
        return list(self._roots)
