"""DNS substrate: names, records, zones, servers, and an iterative resolver."""

from .cache import CacheEntry, ResolverCache
from .idna import (
    ACE_PREFIX,
    decode_label,
    encode_label,
    punycode_decode,
    punycode_encode,
    to_ascii,
    to_unicode,
)
from .message import Message, Question, Rcode
from .name import ROOT, DomainName
from .network import NetworkUnreachable, SimulatedNetwork
from .rdata import A, CNAME, NS, SOA, TXT, Rdata, RRType, parse_rdata
from .resolver import IterativeResolver, ResolutionResult
from .rrset import RRset
from .server import AuthoritativeServer
from .zone import Zone

__all__ = [
    "CacheEntry",
    "ResolverCache",
    "ACE_PREFIX",
    "decode_label",
    "encode_label",
    "punycode_decode",
    "punycode_encode",
    "to_ascii",
    "to_unicode",
    "Message",
    "Question",
    "Rcode",
    "ROOT",
    "DomainName",
    "NetworkUnreachable",
    "SimulatedNetwork",
    "A",
    "CNAME",
    "NS",
    "SOA",
    "TXT",
    "Rdata",
    "RRType",
    "parse_rdata",
    "IterativeResolver",
    "ResolutionResult",
    "RRset",
    "AuthoritativeServer",
    "Zone",
]
