"""DNS query/response messages (the subset the simulation exchanges)."""

from __future__ import annotations

import enum
from typing import List, Optional

from .name import DomainName
from .rdata import RRType
from .rrset import RRset

__all__ = ["Rcode", "Question", "Message"]


class Rcode(enum.Enum):
    """Response codes (IANA values)."""

    NOERROR = 0
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class Question:
    """A query: name + type (class is always IN)."""

    __slots__ = ("qname", "qtype")

    def __init__(self, qname: DomainName, qtype: RRType) -> None:
        self.qname = qname
        self.qtype = qtype

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return self.qname == other.qname and self.qtype is other.qtype

    def __hash__(self) -> int:
        return hash((self.qname, self.qtype))

    def __repr__(self) -> str:
        return f"Question({self.qname} {self.qtype})"


class Message:
    """A response: rcode plus answer/authority/additional sections."""

    __slots__ = ("question", "rcode", "answers", "authorities", "additionals", "aa")

    def __init__(
        self,
        question: Question,
        rcode: Rcode = Rcode.NOERROR,
        answers: Optional[List[RRset]] = None,
        authorities: Optional[List[RRset]] = None,
        additionals: Optional[List[RRset]] = None,
        aa: bool = False,
    ) -> None:
        self.question = question
        self.rcode = rcode
        self.answers = list(answers or [])
        self.authorities = list(authorities or [])
        self.additionals = list(additionals or [])
        self.aa = aa

    @property
    def is_referral(self) -> bool:
        """A delegation response: NOERROR, no answers, NS in authority."""
        return (
            self.rcode is Rcode.NOERROR
            and not self.answers
            and any(rrset.rtype is RRType.NS for rrset in self.authorities)
        )

    @property
    def is_nodata(self) -> bool:
        """NOERROR with no answers and no delegation."""
        return (
            self.rcode is Rcode.NOERROR and not self.answers and not self.is_referral
        )

    def answer_rrset(self) -> Optional[RRset]:
        """The answer RRset matching the question type, if present."""
        for rrset in self.answers:
            if rrset.rtype is self.question.qtype:
                return rrset
        return None

    def __repr__(self) -> str:
        return (
            f"Message({self.question!r} {self.rcode} "
            f"ans={len(self.answers)} auth={len(self.authorities)} "
            f"add={len(self.additionals)})"
        )
