"""Domain names as immutable label tuples (A-label form).

All comparisons are case-insensitive by construction: labels are normalised
to lower-case A-labels on creation.  The paper's TLD analyses (``.ru``,
``.рф``/``xn--p1ai``, the name-server TLD dependency study) all reduce to
operations on these label tuples.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..errors import InvalidDomainName, PunycodeError
from .idna import decode_label, encode_label

__all__ = ["DomainName", "ROOT"]

_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789-_")


def _validate_alabel(label: str) -> str:
    """Validate one already-encoded A-label."""
    if not label:
        raise InvalidDomainName("empty label")
    if len(label) > 63:
        raise InvalidDomainName(f"label longer than 63 octets: {label!r}")
    if not set(label) <= _ALLOWED:
        raise InvalidDomainName(f"illegal character in label: {label!r}")
    if label.startswith("-") or label.endswith("-"):
        raise InvalidDomainName(f"label may not start or end with '-': {label!r}")
    return label


class DomainName:
    """A fully-qualified domain name, stored as lower-case A-labels.

    ``DomainName.parse("Пример.рф")`` and
    ``DomainName.parse("xn--e1afmkfd.xn--p1ai")`` compare equal.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[str]) -> None:
        try:
            encoded = tuple(_validate_alabel(encode_label(lbl)) for lbl in labels)
        except PunycodeError as exc:
            raise InvalidDomainName(str(exc)) from exc
        total = sum(len(lbl) + 1 for lbl in encoded)
        if total > 254:  # 253 visible chars + trailing dot
            raise InvalidDomainName(f"name longer than 253 octets: {encoded!r}")
        object.__setattr__(self, "_labels", encoded)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DomainName is immutable")

    @classmethod
    def parse(cls, text: str) -> "DomainName":
        """Parse dotted text (Unicode or A-label, trailing dot optional)."""
        if text in (".", ""):
            return ROOT
        body = text[:-1] if text.endswith(".") else text
        return cls(body.split("."))

    @property
    def labels(self) -> Tuple[str, ...]:
        """Labels from leftmost (host) to rightmost (TLD)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        """True for the DNS root name."""
        return not self._labels

    @property
    def tld(self) -> Optional[str]:
        """The rightmost label (A-label form), or None for the root."""
        return self._labels[-1] if self._labels else None

    @property
    def parent(self) -> "DomainName":
        """The name with its leftmost label removed."""
        if not self._labels:
            raise InvalidDomainName("the root has no parent")
        return DomainName(self._labels[1:])

    def child(self, label: str) -> "DomainName":
        """Prepend ``label``."""
        return DomainName((label,) + self._labels)

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True when ``self`` equals or ends with ``other``."""
        if len(other._labels) > len(self._labels):
            return False
        if not other._labels:
            return True
        return self._labels[-len(other._labels) :] == other._labels

    def relativize(self, origin: "DomainName") -> Tuple[str, ...]:
        """Labels of ``self`` below ``origin``; errors if not a subdomain."""
        if not self.is_subdomain_of(origin):
            raise InvalidDomainName(f"{self} is not under {origin}")
        count = len(self._labels) - len(origin._labels)
        return self._labels[:count]

    def ancestors(self) -> Iterable["DomainName"]:
        """Yield self, parent, ..., down to (and including) the root."""
        labels = self._labels
        for start in range(len(labels) + 1):
            yield DomainName(labels[start:])

    def to_unicode(self) -> str:
        """Dotted U-label form (no trailing dot; '.' for the root)."""
        if not self._labels:
            return "."
        return ".".join(decode_label(lbl) for lbl in self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __lt__(self, other: "DomainName") -> bool:
        # Canonical DNS ordering: compare reversed label sequences.
        return tuple(reversed(self._labels)) < tuple(reversed(other._labels))

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __str__(self) -> str:
        """Dotted A-label form without trailing dot ('.' for the root)."""
        return ".".join(self._labels) if self._labels else "."


#: The DNS root name.
ROOT = DomainName(())
