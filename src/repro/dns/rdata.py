"""DNS record data (rdata) types used by the simulation.

Only the types the measurement pipeline touches are implemented: ``A``
(apex and name-server addresses), ``NS`` (delegations), ``CNAME``
(aliases), ``SOA`` (zone apexes), and ``TXT`` (zone metadata).
"""

from __future__ import annotations

import enum
from typing import Union

from ..errors import ZoneError
from ..net.ip import format_ipv4, is_valid_ipv4_int, parse_ipv4
from .name import DomainName

__all__ = ["RRType", "A", "NS", "CNAME", "SOA", "TXT", "Rdata", "parse_rdata"]


class RRType(enum.Enum):
    """Resource-record types (values follow the IANA registry)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class A:
    """An IPv4 address record."""

    __slots__ = ("address",)
    rtype = RRType.A

    def __init__(self, address: Union[int, str]) -> None:
        value = parse_ipv4(address) if isinstance(address, str) else address
        if not is_valid_ipv4_int(value):
            raise ZoneError(f"bad A rdata: {address!r}")
        self.address = value

    def to_text(self) -> str:
        """Zone-file presentation format."""
        return format_ipv4(self.address)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, A) and self.address == other.address

    def __hash__(self) -> int:
        return hash((RRType.A, self.address))

    def __repr__(self) -> str:
        return f"A({self.to_text()})"


class NS:
    """A delegation to an authoritative name server."""

    __slots__ = ("target",)
    rtype = RRType.NS

    def __init__(self, target: Union[DomainName, str]) -> None:
        self.target = (
            target if isinstance(target, DomainName) else DomainName.parse(target)
        )

    def to_text(self) -> str:
        return f"{self.target}."

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NS) and self.target == other.target

    def __hash__(self) -> int:
        return hash((RRType.NS, self.target))

    def __repr__(self) -> str:
        return f"NS({self.target})"


class CNAME:
    """An alias to another name."""

    __slots__ = ("target",)
    rtype = RRType.CNAME

    def __init__(self, target: Union[DomainName, str]) -> None:
        self.target = (
            target if isinstance(target, DomainName) else DomainName.parse(target)
        )

    def to_text(self) -> str:
        return f"{self.target}."

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CNAME) and self.target == other.target

    def __hash__(self) -> int:
        return hash((RRType.CNAME, self.target))

    def __repr__(self) -> str:
        return f"CNAME({self.target})"


class SOA:
    """Start-of-authority record for a zone apex."""

    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")
    rtype = RRType.SOA

    def __init__(
        self,
        mname: Union[DomainName, str],
        rname: Union[DomainName, str],
        serial: int,
        refresh: int = 7200,
        retry: int = 900,
        expire: int = 1209600,
        minimum: int = 3600,
    ) -> None:
        self.mname = mname if isinstance(mname, DomainName) else DomainName.parse(mname)
        self.rname = rname if isinstance(rname, DomainName) else DomainName.parse(rname)
        if serial < 0:
            raise ZoneError(f"negative SOA serial: {serial}")
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_text(self) -> str:
        return (
            f"{self.mname}. {self.rname}. {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SOA):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in SOA.__slots__
        )

    def __hash__(self) -> int:
        return hash((RRType.SOA, self.mname, self.rname, self.serial))

    def __repr__(self) -> str:
        return f"SOA({self.mname} serial={self.serial})"


class TXT:
    """Free-form text record."""

    __slots__ = ("text",)
    rtype = RRType.TXT

    def __init__(self, text: str) -> None:
        self.text = text

    def to_text(self) -> str:
        escaped = self.text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TXT) and self.text == other.text

    def __hash__(self) -> int:
        return hash((RRType.TXT, self.text))

    def __repr__(self) -> str:
        return f"TXT({self.text!r})"


Rdata = Union[A, NS, CNAME, SOA, TXT]


def parse_rdata(rtype: RRType, text: str) -> Rdata:
    """Parse presentation-format rdata for ``rtype`` (zone-file loading)."""
    if rtype is RRType.A:
        return A(text)
    if rtype is RRType.NS:
        return NS(text)
    if rtype is RRType.CNAME:
        return CNAME(text)
    if rtype is RRType.SOA:
        fields = text.split()
        if len(fields) != 7:
            raise ZoneError(f"SOA rdata needs 7 fields, got {len(fields)}: {text!r}")
        return SOA(
            fields[0],
            fields[1],
            *(int(field) for field in fields[2:]),
        )
    if rtype is RRType.TXT:
        stripped = text.strip()
        if stripped.startswith('"') and stripped.endswith('"') and len(stripped) >= 2:
            body = stripped[1:-1]
        else:
            body = stripped
        # Left-to-right unescape: naive .replace() chains mis-handle
        # sequences like backslash-then-quote.
        characters = []
        position = 0
        while position < len(body):
            char = body[position]
            if char == "\\" and position + 1 < len(body):
                characters.append(body[position + 1])
                position += 2
            else:
                characters.append(char)
                position += 1
        return TXT("".join(characters))
    raise ZoneError(f"unsupported rdata type: {rtype}")
