"""Provider substrate: the hosting/DNS market and its address plan."""

from .addressing import AddressPlan
from .catalog import ProviderCatalog, standard_catalog
from .provider import NsHost, Provider, Role

__all__ = [
    "AddressPlan",
    "ProviderCatalog",
    "standard_catalog",
    "NsHost",
    "Provider",
    "Role",
]
