"""Provider model: hosting networks and DNS operators.

A provider owns one or more autonomous systems, address space inside them,
and (when it offers DNS) a fleet of name-server hostnames.  A name-server
host may be *operated on another provider's infrastructure* — the paper's
key example is RU-CENTER's cloud name servers (``*.nic.ru`` names) that
were served from Netnod's Swedish network until March 3, 2022.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from ..dns.name import DomainName
from ..errors import ScenarioError

__all__ = ["Role", "NsHost", "Provider"]


class Role(enum.Flag):
    """What services a provider sells."""

    HOSTING = enum.auto()
    DNS = enum.auto()
    PARKING = enum.auto()
    CA = enum.auto()


class NsHost:
    """One authoritative name-server hostname.

    ``owner`` is the provider whose service the host belongs to;
    ``infra`` is the provider whose network actually announces the host's
    address (usually the same, but not for outsourced anycast like the
    RU-CENTER/Netnod arrangement).
    """

    __slots__ = ("hostname", "owner", "infra")

    def __init__(self, hostname: str, owner: str, infra: Optional[str] = None) -> None:
        self.hostname = DomainName.parse(hostname)
        self.owner = owner
        self.infra = infra if infra is not None else owner

    @property
    def tld(self) -> str:
        """TLD of the host *name* (drives the TLD-dependency analysis)."""
        tld = self.hostname.tld
        assert tld is not None
        return tld

    def __repr__(self) -> str:
        extra = f" on {self.infra}" if self.infra != self.owner else ""
        return f"NsHost({self.hostname}, {self.owner}{extra})"


class Provider:
    """One hosting/DNS company in the simulated market."""

    __slots__ = ("key", "display", "country", "asns", "roles", "ns_hosts")

    def __init__(
        self,
        key: str,
        display: str,
        country: str,
        asns: Sequence[int],
        roles: Role,
        ns_hostnames: Sequence[str] = (),
        ns_infra: Optional[str] = None,
    ) -> None:
        if not asns:
            raise ScenarioError(f"provider {key} needs at least one ASN")
        if Role.DNS in roles and not ns_hostnames:
            raise ScenarioError(f"DNS provider {key} needs name-server hosts")
        self.key = key
        self.display = display
        self.country = country
        self.asns: Tuple[int, ...] = tuple(asns)
        self.roles = roles
        self.ns_hosts: Tuple[NsHost, ...] = tuple(
            NsHost(hostname, key, ns_infra) for hostname in ns_hostnames
        )

    @property
    def primary_asn(self) -> int:
        """The ASN used for customer hosting."""
        return self.asns[0]

    @property
    def offers_hosting(self) -> bool:
        """True when domains can point their apex A records here."""
        return bool(self.roles & (Role.HOSTING | Role.PARKING))

    @property
    def offers_dns(self) -> bool:
        """True when domains can delegate to this provider."""
        return Role.DNS in self.roles

    def __repr__(self) -> str:
        return f"Provider({self.key}, AS{self.primary_asn}, {self.country})"
