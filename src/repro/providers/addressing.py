"""The address plan: IP space, routing, geolocation, and name-server hosts.

Every catalogued ASN gets a /16; the lower half of each /16 holds
infrastructure /24s (name servers), the upper /17 is the customer hosting
pool.  From this single source of truth the plan derives the routing table
(IP -> ASN) and the geolocation database (IP -> country), so "where does
this address geolocate" and "whose network is this" stay mutually
consistent — exactly the property the paper's measurements rely on.

Name-server hosts can be *renumbered* onto a different provider's
infrastructure (``move_ns_host``), which is how the March 3, 2022 Netnod /
RU-CENTER event is simulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..dns.name import DomainName
from ..errors import AllocationError, ScenarioError
from ..geo.database import GeoDatabase, GeoDatabaseBuilder
from ..net.prefix import Prefix, PrefixAllocator
from ..net.rib import RoutingTable
from ..rng import stable_hash
from .catalog import ProviderCatalog
from .provider import NsHost

__all__ = ["AddressPlan"]

_DEFAULT_BASE = "20.0.0.0/6"


class AddressPlan:
    """Concrete address assignments for a provider catalog."""

    def __init__(
        self,
        catalog: ProviderCatalog,
        base: Union[str, Prefix] = _DEFAULT_BASE,
        asn_prefix_length: int = 16,
    ) -> None:
        self.catalog = catalog
        parent = Prefix.parse(base) if isinstance(base, str) else base
        self._allocator = PrefixAllocator(parent)
        self._asn_prefix_length = asn_prefix_length

        self._asn_prefix: Dict[int, Prefix] = {}
        self._asn_country: Dict[int, str] = {}
        self._infra_allocators: Dict[int, PrefixAllocator] = {}
        self._infra_block: Dict[str, Prefix] = {}
        self._ns_hosts: Dict[DomainName, NsHost] = {}
        self._ns_address: Dict[DomainName, int] = {}
        self._ns_cursor: Dict[str, int] = {}

        for provider in catalog:
            for asn in provider.asns:
                if asn not in self._asn_prefix:
                    prefix = self._allocator.allocate(asn_prefix_length)
                    self._asn_prefix[asn] = prefix
                    self._asn_country[asn] = provider.country
                    # Infra /24s come from the lower half of the block.
                    lower = Prefix(prefix.network, asn_prefix_length + 1)
                    self._infra_allocators[asn] = PrefixAllocator(lower)

        for provider in catalog:
            for ns_host in provider.ns_hosts:
                self._place_ns_host(ns_host)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _infra_block_for(self, provider_key: str) -> Prefix:
        block = self._infra_block.get(provider_key)
        if block is None:
            provider = self.catalog.get(provider_key)
            block = self._infra_allocators[provider.primary_asn].allocate(24)
            self._infra_block[provider_key] = block
            self._ns_cursor[provider_key] = block.first
        return block

    def _place_ns_host(self, ns_host: NsHost) -> int:
        if ns_host.hostname in self._ns_hosts and (
            self._ns_hosts[ns_host.hostname].owner != ns_host.owner
        ):
            raise ScenarioError(f"duplicate ns hostname {ns_host.hostname}")
        block = self._infra_block_for(ns_host.infra)
        cursor = self._ns_cursor[ns_host.infra]
        if cursor > block.last:
            raise AllocationError(f"infra block of {ns_host.infra} exhausted")
        self._ns_cursor[ns_host.infra] = cursor + 1
        self._ns_hosts[ns_host.hostname] = ns_host
        self._ns_address[ns_host.hostname] = cursor
        return cursor

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def prefix_of_asn(self, asn: int) -> Prefix:
        """The /16 announced by ``asn``."""
        prefix = self._asn_prefix.get(asn)
        if prefix is None:
            raise ScenarioError(f"ASN {asn} has no allocation")
        return prefix

    def hosting_pool(self, asn: int) -> Prefix:
        """The customer pool (upper /17) of an ASN's block."""
        prefix = self.prefix_of_asn(asn)
        half = 1 << (32 - self._asn_prefix_length - 1)
        return Prefix(prefix.network + half, self._asn_prefix_length + 1)

    def routing_table(self) -> RoutingTable:
        """IP -> origin-ASN table covering every allocation."""
        table = RoutingTable()
        for asn, prefix in self._asn_prefix.items():
            table.announce(prefix, asn)
        return table

    def geo_database(self) -> GeoDatabase:
        """IP -> country database consistent with the allocations."""
        builder = GeoDatabaseBuilder()
        for asn, prefix in self._asn_prefix.items():
            builder.add_prefix(prefix, self._asn_country[asn])
        return builder.build()

    # ------------------------------------------------------------------
    # Name-server hosts
    # ------------------------------------------------------------------

    def ns_hostnames(self) -> List[DomainName]:
        """All known name-server hostnames."""
        return sorted(self._ns_address)

    def ns_host(self, hostname: Union[str, DomainName]) -> NsHost:
        """Metadata for a name-server hostname."""
        name = (
            hostname
            if isinstance(hostname, DomainName)
            else DomainName.parse(hostname)
        )
        host = self._ns_hosts.get(name)
        if host is None:
            raise ScenarioError(f"unknown name-server host {name}")
        return host

    def ns_address(self, hostname: Union[str, DomainName]) -> int:
        """Current address of a name-server host."""
        name = (
            hostname
            if isinstance(hostname, DomainName)
            else DomainName.parse(hostname)
        )
        address = self._ns_address.get(name)
        if address is None:
            raise ScenarioError(f"unknown name-server host {name}")
        return address

    def move_ns_host(
        self, hostname: Union[str, DomainName], new_infra_key: str
    ) -> Tuple[int, int]:
        """Renumber a name-server host onto another provider's network.

        Returns ``(old_address, new_address)``.  This is the simulation of
        the Netnod -> RU-CENTER renumbering of March 3, 2022.
        """
        name = (
            hostname
            if isinstance(hostname, DomainName)
            else DomainName.parse(hostname)
        )
        host = self.ns_host(name)
        old_address = self._ns_address[name]
        moved = NsHost(str(name), host.owner, new_infra_key)
        new_address = self._place_ns_host(moved)
        return old_address, new_address

    def country_of_address(self, address: int) -> Optional[str]:
        """Country an address geolocates to under the *current* plan."""
        for asn, prefix in self._asn_prefix.items():
            if prefix.contains(address):
                return self._asn_country[asn]
        return None

    # ------------------------------------------------------------------
    # Customer hosting addresses
    # ------------------------------------------------------------------

    def hosting_address(
        self,
        provider_key: str,
        domain: Union[str, DomainName],
        asn: Optional[int] = None,
    ) -> int:
        """Deterministic apex address for ``domain`` at a provider.

        Shared-hosting collisions (two domains on one address) are
        intentional and realistic.
        """
        provider = self.catalog.get(provider_key)
        if not provider.offers_hosting and asn is None:
            raise ScenarioError(f"{provider_key} does not offer hosting")
        pool = self.hosting_pool(asn if asn is not None else provider.primary_asn)
        offset = stable_hash("hosting", provider_key, str(domain)) % pool.size
        return pool.first + offset
