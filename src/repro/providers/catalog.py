"""The standard provider catalog for the conflict scenario.

Names, countries, and AS numbers follow the providers the paper reports on
(Amazon AS16509, Sedo AS47846, Cloudflare AS13335, Google AS15169 and
AS396982, Netnod, Hetzner, Linode, Serverel, and the big four Russian
hosters REG.RU / RU-CENTER / Timeweb / Beget).  The rest of the market is
filled with generic providers so population-level compositions match the
paper's baselines.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import ScenarioError
from ..net.asn import ASInfo, ASRegistry
from .provider import Provider, Role

__all__ = ["ProviderCatalog", "standard_catalog"]

_H = Role.HOSTING
_D = Role.DNS
_P = Role.PARKING


class ProviderCatalog:
    """An indexed collection of providers."""

    def __init__(self, providers: List[Provider]) -> None:
        self._by_key: Dict[str, Provider] = {}
        for provider in providers:
            if provider.key in self._by_key:
                raise ScenarioError(f"duplicate provider key {provider.key}")
            self._by_key[provider.key] = provider

    def __iter__(self) -> Iterator[Provider]:
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def get(self, key: str) -> Provider:
        """Provider by key; raises for unknown keys."""
        provider = self._by_key.get(key)
        if provider is None:
            raise ScenarioError(f"unknown provider: {key}")
        return provider

    def try_get(self, key: str) -> Optional[Provider]:
        """Provider by key or None."""
        return self._by_key.get(key)

    def by_asn(self, asn: int) -> Optional[Provider]:
        """The provider owning ``asn``, if any."""
        for provider in self._by_key.values():
            if asn in provider.asns:
                return provider
        return None

    def hosting_providers(self) -> List[Provider]:
        """Providers that can host web content."""
        return [p for p in self._by_key.values() if p.offers_hosting]

    def dns_providers(self) -> List[Provider]:
        """Providers that run authoritative DNS."""
        return [p for p in self._by_key.values() if p.offers_dns]

    def as_registry(self) -> ASRegistry:
        """Build the AS metadata registry for every catalogued ASN.

        When two providers share an ASN (RU-CENTER and its cloud DNS
        service), the first-listed provider names it.
        """
        registry = ASRegistry()
        for provider in self._by_key.values():
            for asn in provider.asns:
                if asn not in registry:
                    registry.register(
                        ASInfo(asn, provider.display, provider.country, provider.key)
                    )
        return registry


def standard_catalog() -> ProviderCatalog:
    """The provider market used by the conflict scenario."""
    providers = [
        # --- Major Russian hosters (paper Figure 4's stable block) -------
        Provider("regru", "REG.RU", "RU", [197695], _H | _D,
                 ["ns1.reg.ru", "ns2.reg.ru"]),
        Provider("rucenter", "RU-CENTER", "RU", [48287], _H | _D,
                 ["ns3-l2.nic.ru", "ns4-l2.nic.ru"]),
        Provider("timeweb", "Timeweb", "RU", [9123], _H | _D,
                 ["ns1.timeweb.ru", "ns2.timeweb.ru"]),
        Provider("beget", "Beget", "RU", [198610], _H | _D,
                 ["ns1.beget.com", "ns2.beget.com"]),
        # RU-CENTER's outsourced cloud name service: nic.ru *names*, but
        # the hosts sat in Netnod's Swedish network until March 3, 2022.
        # The dedicated "netnodcloud" block lets the scenario model either
        # a renumbering or a whole-prefix transfer of that service.
        Provider("rucenter_cloud", "RU-CENTER Cloud DNS", "RU", [48287], _D,
                 ["ns4-cloud.nic.ru", "ns8-cloud.nic.ru"], ns_infra="netnodcloud"),
        # --- Other Russian providers -------------------------------------
        Provider("selectel", "Selectel", "RU", [49505], _H | _D,
                 ["ns1.selectel.ru", "ns2.selectel.ru"]),
        Provider("yandexcloud", "Yandex Cloud", "RU", [13238], _H | _D,
                 ["dns1.yandex.net", "dns2.yandex.net"]),
        Provider("sprinthost", "Sprinthost", "RU", [35278], _H | _D,
                 ["ns1.sprinthost.ru", "ns2.sprinthost.ru"]),
        Provider("masterhost", "Masterhost", "RU", [25532], _H | _D,
                 ["ns1.masterhost.ru", "ns2.masterhost.ru"]),
        Provider("mchost", "McHost", "RU", [208677], _H | _D,
                 ["ns1.mchost.ru", "ns2.mchost.ru"]),
        Provider("firstvds", "FirstVDS", "RU", [29182], _H | _D,
                 ["ns1.firstvds.ru", "ns2.firstvds.ru"]),
        Provider("rtcomm", "RTComm", "RU", [8342], _H | _D,
                 ["ns1.rtcomm.ru", "ns2.rtcomm.ru"]),
        Provider("ihcru", "IHC.ru", "RU", [56694], _H | _D,
                 ["ns1.ihc.ru", "ns2.ihc.ru"]),
        # Russian DNS operators with non-Russian name-server TLDs.
        Provider("prodns_ru", "PRO DNS (RU POPs)", "RU", [211001], _D,
                 ["ns5.hosting.pro", "ns6.hosting.pro"]),
        Provider("nsmasterorg", "NS-Master", "RU", [211002], _D,
                 ["a.ns-master.org", "b.ns-master.org"]),
        # --- Western hyperscalers and hosters -----------------------------
        Provider("cloudflare", "Cloudflare", "US", [13335], _H | _D,
                 ["alice.ns.cloudflare.com", "bob.ns.cloudflare.com"]),
        Provider("amazon", "Amazon", "US", [16509], _H | _D,
                 ["ns-101.awsdns-01.com", "ns-202.awsdns-02.net",
                  "ns-303.awsdns-03.org", "ns-404.awsdns-04.co.uk"]),
        Provider("google", "Google", "US", [15169, 396982], _H | _D,
                 ["ns-cloud-a1.googledomains.com", "ns-cloud-a2.googledomains.com"]),
        Provider("sedo", "Sedo", "DE", [47846], _H | _D | _P,
                 ["ns1.sedoparking.com", "ns2.sedoparking.com"]),
        Provider("serverel", "Serverel", "NL", [50867], _H),
        Provider("hetzner", "Hetzner", "DE", [24940], _H | _D,
                 ["helium.ns.hetzner.de", "hydrogen.ns.hetzner.de"]),
        Provider("linode", "Linode", "US", [63949], _H | _D,
                 ["ns1.linode.com", "ns2.linode.com"]),
        Provider("godaddy", "GoDaddy", "US", [26496], _H | _D,
                 ["ns01.domaincontrol.com", "ns02.domaincontrol.com"]),
        Provider("ovh", "OVH", "FR", [16276], _H | _D,
                 ["dns100.ovh.net", "ns100.ovh.net"]),
        Provider("digitalocean", "DigitalOcean", "US", [14061], _H | _D,
                 ["ns1.digitalocean.com", "ns2.digitalocean.com"]),
        Provider("contabo", "Contabo", "DE", [51167], _H),
        Provider("netnod", "Netnod", "SE", [8674], _D,
                 ["x.anycast.netnod.se", "y.anycast.netnod.se"]),
        # The Netnod network segment that carried RU-CENTER's cloud NS.
        Provider("netnodcloud", "Netnod (RU-CENTER segment)", "SE", [8675],
                 Role.DNS, ["z.anycast.netnod.se"]),
        # Anycast .pro DNS farm (name TLD .pro, geolocates to US POPs).
        Provider("prodns", "PRO DNS (anycast)", "US", [211000], _D,
                 ["ns1.hosting.pro", "ns2.hosting.pro"]),
        Provider("infobizdns", "InfoBiz DNS", "US", [211003], _D,
                 ["ns1.dnsfarm.info", "ns2.dnsfarm.biz"]),
        # The long tail: small DNS operators whose NS names sit under the
        # ~265 other TLDs the paper observes at <1% each (Figure 3).
        Provider("longtail1", "EuroDNS Farm", "FR", [211010], _D,
                 ["a.nsf.fr", "b.nsf.nl", "c.nsf.eu", "d.nsf.ch", "e.nsf.it"]),
        Provider("longtail2", "Nordic DNS", "FI", [211011], _D,
                 ["a.nsp.se", "b.nsp.fi", "c.nsp.dk", "d.nsp.no", "e.nsp.ee"]),
        Provider("longtail3", "EurAsia DNS", "TR", [211012], _D,
                 ["a.nsq.tr", "b.nsq.kz", "c.nsq.pl", "d.nsq.cz", "e.nsq.me"]),
        # --- Small European hosters (sanctioned-domain homes) -------------
        Provider("wedos", "WEDOS", "CZ", [197019], _H | _D,
                 ["ns.wedos.cz", "ns.wedos.eu"]),
        Provider("zonee", "Zone.ee", "EE", [203300], _H | _D,
                 ["ns1.zone.ee", "ns2.zone.ee"]),
        Provider("homepl", "home.pl", "PL", [12824], _H | _D,
                 ["dns1.home.pl", "dns2.home.pl"]),
        Provider("germanhost", "GermanHost", "DE", [202100], _H | _D,
                 ["ns1.germanhost.de", "ns2.germanhost.de"]),
        # --- Generic fill providers ---------------------------------------
        Provider("ruhost1", "RU-Host One", "RU", [210001], _H | _D,
                 ["ns1.ruhost1.ru", "ns2.ruhost1.ru"]),
        Provider("ruhost2", "RU-Host Two", "RU", [210002], _H | _D,
                 ["ns1.ruhost2.ru", "ns2.ruhost2.ru"]),
        Provider("ruhost3", "RU-Host Three", "RU", [210003], _H | _D,
                 ["ns1.ruhost3.ru", "ns2.ruhost3.ru"]),
        Provider("ruhost4", "RU-Host Four", "RU", [210004], _H | _D,
                 ["ns1.ruhost4.ru", "ns2.ruhost4.ru"]),
        Provider("ruhost5", "RU-Host Five", "RU", [210005], _H | _D,
                 ["ns1.ruhost5.ru", "ns2.ruhost5.ru"]),
        Provider("ruhost6", "RU-Host Six", "RU", [210006], _H | _D,
                 ["ns1.ruhost6.ru", "ns2.ruhost6.ru"]),
    ]
    return ProviderCatalog(providers)
