"""Cross-worker shared result cache for the pre-fork serving tier.

One :class:`SharedResultCache` directory is shared by every worker of a
``repro serve --processes N`` pool.  It plays the role the in-process
result LRU plays for a single worker, extended across process
boundaries:

* **results** — canonical JSON texts stored one-per-file, named by a
  hash of :meth:`QuerySpec.cache_key`, written atomically (temp file +
  ``os.replace``) so readers only ever observe complete entries;
* **leases** — cross-worker request coalescing.  The first worker to
  need a missing result takes a lease (an ``O_EXCL``-created lock file
  carrying its pid); every other worker polls for the result instead of
  recomputing, so N workers hitting the same cold query perform exactly
  one archive read between them.  A lease whose owner died (pid gone)
  or that outlived ``lease_timeout`` is stolen, so a crashed worker
  never wedges a query key.

The store is deliberately filesystem-simple: no shared memory, no
daemons, nothing to recover after a crash beyond unlinking stale lock
files — which the stealing path does lazily.  Entries are immutable
once written (the serving layer only caches 200 answers, and equal
specs produce byte-identical canonical JSON), so there is no
invalidation protocol to get wrong.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from typing import Optional

__all__ = ["SharedResultCache", "Lease"]

#: A lease older than this is presumed orphaned even when its pid is
#: recycled; computations are bounded by request deadlines well below it.
DEFAULT_LEASE_TIMEOUT = 60.0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lease owner on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill
        return True
    return True


class Lease:
    """Exclusive right to compute one cache key (a held lock file)."""

    __slots__ = ("path", "_released")

    def __init__(self, path: str) -> None:
        self.path = path
        self._released = False

    def release(self) -> None:
        """Drop the lease; idempotent, survives the file vanishing."""
        if self._released:
            return
        self._released = True
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SharedResultCache:
    """Filesystem-backed result store shared by a worker pool."""

    def __init__(
        self, root: str, lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    ) -> None:
        self.root = root
        self.lease_timeout = float(lease_timeout)
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def _name(key: str) -> str:
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]

    def _result_path(self, key: str) -> str:
        return os.path.join(self.root, self._name(key) + ".json")

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.root, self._name(key) + ".lock")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """The stored canonical JSON for ``key``, or None."""
        try:
            with open(self._result_path(key), "r", encoding="utf-8") as handle:
                return handle.read()
        except (FileNotFoundError, NotADirectoryError):
            return None

    def put(self, key: str, text: str) -> None:
        """Store one result atomically (readers never see partials)."""
        path = self._result_path(key)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.root) if name.endswith(".json")
            )
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Leases (cross-worker coalescing)
    # ------------------------------------------------------------------

    def acquire(self, key: str) -> Optional[Lease]:
        """Try to become the computer for ``key``.

        Returns a :class:`Lease` when this caller should compute, or
        ``None`` when another live worker already holds the lease (the
        caller should poll :meth:`get` instead).  A stale lease — owner
        pid dead, or older than ``lease_timeout`` — is stolen in place.
        """
        path = self._lease_path(key)
        for _ in range(2):  # first attempt, then once after a steal
            try:
                descriptor = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if not self._lease_stale(path):
                    return None
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            return Lease(path)
        return None

    def lease_pending(self, key: str) -> bool:
        """True while a live worker holds the lease for ``key``."""
        path = self._lease_path(key)
        return os.path.exists(path) and not self._lease_stale(path)

    def _lease_stale(self, path: str) -> bool:
        try:
            stat = os.stat(path)
        except OSError:
            return False  # vanished: released, not stale
        if time.time() - stat.st_mtime > self.lease_timeout:
            return True
        try:
            with open(path, "r", encoding="utf-8") as handle:
                pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            # Mid-write or unreadable: only the age check applies.
            return False
        return not _pid_alive(pid)

    def __repr__(self) -> str:
        return f"SharedResultCache({self.root!r}, entries={len(self)})"
