"""``repro.service`` — archive-backed HTTP query service.

The asyncio serving layer over :mod:`repro.api`: ``repro serve`` binds a
:class:`QueryService`, which answers the same :class:`~repro.api.spec.QuerySpec`
queries as offline ``repro query`` with byte-identical canonical JSON.
Resilience (per-request deadlines, the circuit breaker, serve-stale
degraded mode) lives in :mod:`repro.service.resilience` and the server
module.  See docs/service.md for the endpoint and schema reference.
"""

from .http import HttpError, HttpRequest, HttpResponse, read_request
from .resilience import (
    ADMIT_DENY,
    ADMIT_FRESH,
    ADMIT_PROBE,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from .server import QueryService, run_service

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "QueryService",
    "read_request",
    "run_service",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ADMIT_FRESH",
    "ADMIT_PROBE",
    "ADMIT_DENY",
]
