"""``repro.service`` — archive-backed HTTP query service.

The asyncio serving layer over :mod:`repro.api`: ``repro serve`` binds a
:class:`QueryService`, which answers the same :class:`~repro.api.spec.QuerySpec`
queries as offline ``repro query`` with byte-identical canonical JSON.
See docs/service.md for the endpoint and schema reference.
"""

from .http import HttpError, HttpRequest, HttpResponse, read_request
from .server import QueryService, run_service

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "QueryService",
    "read_request",
    "run_service",
]
