"""``repro.service`` — archive-backed HTTP query service.

The asyncio serving layer over :mod:`repro.api`: ``repro serve`` binds a
:class:`QueryService`, which answers the same :class:`~repro.api.spec.QuerySpec`
queries as offline ``repro query`` with byte-identical canonical JSON.
Resilience (per-request deadlines, the circuit breaker, serve-stale
degraded mode) lives in :mod:`repro.service.resilience` and the server
module.  ``repro serve --processes N`` scales the same server across a
pre-fork worker pool (:mod:`repro.service.multiproc`) with a
cross-worker shared result cache (:mod:`repro.service.shared_cache`).
``repro serve --follow`` additionally runs the live follow engine
(:mod:`repro.live`) on one leader worker, publishing change events at
``/v1/events`` and as an SSE stream.  See docs/service.md and
docs/live.md for the endpoint and schema reference.
"""

from .http import HttpError, HttpRequest, HttpResponse, read_request
from .multiproc import (
    MODE_INHERITED,
    MODE_REUSEPORT,
    MODE_SINGLE,
    ServeSupervisor,
    aggregate_worker_metrics,
    run_supervised,
    select_socket_mode,
)
from .resilience import (
    ADMIT_DENY,
    ADMIT_FRESH,
    ADMIT_PROBE,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from .server import (
    DEFAULT_SSE_BUFFER,
    LAST_EVENT_ID_HEADER,
    QueryService,
    run_service,
)
from .shared_cache import Lease, SharedResultCache

__all__ = [
    "DEFAULT_SSE_BUFFER",
    "LAST_EVENT_ID_HEADER",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "QueryService",
    "read_request",
    "run_service",
    "run_supervised",
    "ServeSupervisor",
    "SharedResultCache",
    "Lease",
    "select_socket_mode",
    "aggregate_worker_metrics",
    "MODE_REUSEPORT",
    "MODE_INHERITED",
    "MODE_SINGLE",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ADMIT_FRESH",
    "ADMIT_PROBE",
    "ADMIT_DENY",
]
