"""The pre-fork serving tier: ``repro serve --processes N``.

A parent **supervisor** process owns the listen address and N forked
**workers** each run the ordinary asyncio :class:`~repro.service.server.
QueryService` event loop over the same read-only archive:

* **socket strategy** — where the platform supports it, every worker
  binds its own ``SO_REUSEPORT`` socket to the shared address and the
  kernel load-balances accepted connections across workers; elsewhere
  the parent binds one listening socket before forking and the workers
  inherit it (both accept on the same FD).  When neither ``SO_REUSEPORT``
  nor ``fork`` is available the tier degrades to a single in-process
  server with a clear warning instead of crashing —
  :func:`select_socket_mode` is the (monkeypatchable, pure) decision.
* **supervision** — the parent restarts crashed workers with bounded
  exponential backoff, tracks per-slot restart counts, and walks an
  observable ``live → ready → degraded → ready`` state machine that
  mirrors worker health.
* **admin plane** — each worker opens a loopback *control* listener
  (the same service, so ``/metrics`` and ``/healthz`` work there) and
  reports its port to the parent; the parent serves an aggregated
  ``/metrics`` (per-worker summaries tagged by worker id plus summed
  counters/caches) and a supervisor ``/healthz`` on a separate admin
  port.
* **shared results** — workers share one
  :class:`~repro.service.shared_cache.SharedResultCache`, so request
  coalescing keeps collapsing identical queries *across* workers: N
  workers hit by the same cold query perform one archive read between
  them, and the rest adopt the published canonical bytes.
* **drain** — SIGINT/SIGTERM to the parent forwards SIGTERM to every
  worker, which runs the ordinary graceful shutdown (stop accepting,
  drain in-flight queries), then the parent reaps and exits 0.

Workers are *forked*, so the parent's archive-backed context is
inherited copy-on-write — N workers share the built manifest and page
cache instead of paying N context builds.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..api.spec import SCHEMA_VERSION
from ..faults import mark_worker_process
from .http import HttpResponse, read_request, split_path
from .server import QueryService
from .shared_cache import SharedResultCache

__all__ = [
    "MODE_REUSEPORT",
    "MODE_INHERITED",
    "MODE_SINGLE",
    "select_socket_mode",
    "reuseport_available",
    "fork_available",
    "aggregate_worker_metrics",
    "ServeSupervisor",
    "run_supervised",
]

#: Every worker binds its own SO_REUSEPORT socket (kernel balances).
MODE_REUSEPORT = "reuseport"
#: Workers accept on one parent-bound socket inherited through fork.
MODE_INHERITED = "inherited"
#: Multi-process serving unavailable; degrade to one in-process server.
MODE_SINGLE = "single"

#: Supervision cadence and restart backoff shape.
POLL_INTERVAL = 0.15
BACKOFF_BASE = 0.1
BACKOFF_CAP = 5.0
#: A worker alive this long resets its consecutive-failure count.
STABLE_SECONDS = 5.0
#: Patience for worker startup and graceful drain.
READY_TIMEOUT = 120.0
DRAIN_TIMEOUT = 15.0


# ----------------------------------------------------------------------
# Capability probes and the (pure, testable) mode decision
# ----------------------------------------------------------------------

def reuseport_available() -> bool:
    """True when this platform accepts SO_REUSEPORT on a TCP socket."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    finally:
        probe.close()
    return True


def fork_available() -> bool:
    """True when worker processes can be forked (COW context sharing)."""
    return "fork" in multiprocessing.get_all_start_methods()


def select_socket_mode(processes: int) -> Tuple[str, str]:
    """``(mode, reason)`` for a requested worker count.

    Pure decision over platform capabilities so tests can monkeypatch
    ``socket``/``multiprocessing`` and pin every degradation path.
    """
    if processes <= 1:
        return MODE_SINGLE, "one process requested"
    if not fork_available():
        return (
            MODE_SINGLE,
            "process fork is unavailable on this platform; "
            "serving single-process instead of crashing",
        )
    if reuseport_available():
        return MODE_REUSEPORT, "SO_REUSEPORT supported"
    return (
        MODE_INHERITED,
        "SO_REUSEPORT unavailable; workers inherit the parent-bound socket",
    )


def _listen_socket(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    sock.setblocking(False)
    return sock


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _WorkerArgs:
    """Everything a forked worker needs (crosses the fork by reference)."""

    __slots__ = (
        "slot", "incarnation", "host", "port", "mode",
        "listen_sock", "shared_dir", "context", "options", "conn",
    )

    def __init__(self, **fields) -> None:
        for name in self.__slots__:
            setattr(self, name, fields[name])


def _worker_entry(args: _WorkerArgs) -> None:
    """Process target: one serving worker (runs until SIGTERM)."""
    mark_worker_process()
    try:
        asyncio.run(_worker_main(args))
    except KeyboardInterrupt:  # pragma: no cover - racing SIGINT
        pass


async def _worker_main(args: _WorkerArgs) -> None:
    shared = (
        SharedResultCache(args.shared_dir) if args.shared_dir else None
    )
    service = QueryService(
        args.context,
        shared_cache=shared,
        worker_id=args.slot,
        **args.options,
    )
    if args.mode == MODE_REUSEPORT:
        sock = _listen_socket(args.host, args.port, reuseport=True)
    else:
        sock = args.listen_sock
    await service.start(sock=sock)
    control_port = await service.add_listener("127.0.0.1", 0)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda *_: stop.set())
    args.conn.send(("ready", args.slot, args.incarnation, control_port))
    await stop.wait()
    await service.shutdown()


# ----------------------------------------------------------------------
# Metrics aggregation (pure; unit-tested directly)
# ----------------------------------------------------------------------

def aggregate_worker_metrics(
    payloads: Dict[str, Optional[dict]],
) -> Dict[str, object]:
    """Fold per-worker ``/metrics`` payloads into one pool-wide view.

    Counters, recovery counts, and cache hit/miss totals sum; endpoint
    stats sum requests/errors/wall time and keep the pool-wide max.
    Workers that could not be scraped contribute nothing (their slot
    appears with ``null`` in the per-worker section).
    """
    counters: Dict[str, int] = {}
    recovery: Dict[str, int] = {}
    caches: Dict[str, Dict[str, float]] = {}
    endpoints: Dict[str, Dict[str, float]] = {}
    for payload in payloads.values():
        if not payload:
            continue
        metrics = payload.get("metrics", {})
        for name, value in metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in metrics.get("recovery", {}).items():
            recovery[name] = recovery.get(name, 0) + int(value)
        for name, stats in metrics.get("caches", {}).items():
            bucket = caches.setdefault(name, {"hits": 0, "misses": 0})
            bucket["hits"] += int(stats.get("hits", 0))
            bucket["misses"] += int(stats.get("misses", 0))
        for name, stats in metrics.get("endpoints", {}).items():
            bucket = endpoints.setdefault(
                name,
                {"requests": 0, "errors": 0,
                 "wall_seconds": 0.0, "max_seconds": 0.0},
            )
            bucket["requests"] += int(stats.get("requests", 0))
            bucket["errors"] += int(stats.get("errors", 0))
            bucket["wall_seconds"] += float(stats.get("wall_seconds", 0.0))
            bucket["max_seconds"] = max(
                bucket["max_seconds"], float(stats.get("max_seconds", 0.0))
            )
    for bucket in caches.values():
        total = bucket["hits"] + bucket["misses"]
        bucket["hit_rate"] = (
            round(bucket["hits"] / total, 4) if total else 0.0
        )
    return {
        "counters": counters,
        "recovery": recovery,
        "caches": caches,
        "endpoints": endpoints,
    }


async def _fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Optional[dict]:
    """One GET against a worker control port; None on any failure."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    except (OSError, asyncio.TimeoutError):
        return None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    try:
        status = int(head.split(maxsplit=2)[1])
        payload = json.loads(body.decode("utf-8"))
    except (IndexError, ValueError, UnicodeDecodeError):
        return None
    return payload if status == 200 and isinstance(payload, dict) else None


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

class _Slot:
    """One worker position: process handle plus supervision state."""

    __slots__ = (
        "slot", "process", "conn", "control_port", "ready",
        "incarnation", "restarts", "consecutive", "started_at",
        "restart_at",
    )

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.control_port: Optional[int] = None
        self.ready = False
        self.incarnation = 0
        self.restarts = 0
        self.consecutive = 0
        self.started_at = 0.0
        #: Monotonic time before which a crashed slot must not respawn.
        self.restart_at = 0.0


class ServeSupervisor:
    """Parent process of a ``--processes N`` worker pool."""

    def __init__(
        self,
        context,
        host: str = "127.0.0.1",
        port: int = 8321,
        processes: int = 2,
        admin_host: str = "127.0.0.1",
        admin_port: int = 0,
        shared_dir: Optional[str] = None,
        mode: Optional[str] = None,
        **options,
    ) -> None:
        if processes < 2:
            raise ValueError(f"supervisor needs >= 2 processes: {processes}")
        self._context = context
        self.host = host
        self.processes = int(processes)
        self.mode = mode or select_socket_mode(processes)[0]
        if self.mode not in (MODE_REUSEPORT, MODE_INHERITED):
            raise ValueError(
                f"supervisor cannot run in mode {self.mode!r}; "
                "use run_service for single-process serving"
            )
        self._options = dict(options)
        self._admin_host = admin_host
        self._admin_port_requested = int(admin_port)
        self._owns_shared_dir = shared_dir is None
        self.shared_dir = shared_dir or tempfile.mkdtemp(prefix="repro-shared-")
        self._mp = multiprocessing.get_context("fork")
        self._slots = [_Slot(index) for index in range(self.processes)]
        self._stopping = False
        self._state = "live"
        #: Recent (unix_time, state) transitions, oldest first.
        self.state_history: List[Tuple[float, str]] = [(time.time(), "live")]
        self.restarts_total = 0
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None

        # Resolve the serving port up front (also what makes --port 0
        # work): in reuseport mode a bound-but-unlistened placeholder
        # reserves the address; in inherited mode the parent's real
        # listening socket is the reservation.
        if self.mode == MODE_REUSEPORT:
            self._placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((host, port))
            self.port = self._placeholder.getsockname()[1]
        else:
            self._listen_sock = _listen_socket(host, port, reuseport=False)
            self.port = self._listen_sock.getsockname()[1]
        self.admin_port: Optional[int] = None

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        options = dict(self._options)
        if options.get("follow") is not None:
            # Exactly one worker (slot 0) leads the live follow engine;
            # the rest serve events, health, and stale-mode queries
            # from the durable state the leader writes.  A restarted
            # leader resumes from the journal, so supervision and
            # follow recovery compose for free.
            options["follow_leader"] = slot.slot == 0
        args = _WorkerArgs(
            slot=slot.slot,
            incarnation=slot.incarnation,
            host=self.host,
            port=self.port,
            mode=self.mode,
            listen_sock=self._listen_sock,
            shared_dir=self.shared_dir,
            context=self._context,
            options=options,
            conn=child_conn,
        )
        process = self._mp.Process(
            target=_worker_entry, args=(args,), daemon=False,
            name=f"repro-serve-w{slot.slot}",
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.ready = False
        slot.control_port = None
        slot.started_at = time.monotonic()
        slot.incarnation += 1

    def _drain_messages(self, slot: _Slot) -> None:
        if slot.conn is None:
            return
        try:
            while slot.conn.poll():
                message = slot.conn.recv()
                if message[0] == "ready":
                    slot.control_port = int(message[3])
                    slot.ready = True
        except (EOFError, OSError):
            pass

    def _set_state(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.state_history.append((time.time(), state))
            del self.state_history[:-50]

    def _refresh_state(self) -> None:
        if self._stopping:
            self._set_state("live")
            return
        healthy = all(
            slot.process is not None
            and slot.process.is_alive()
            and slot.ready
            for slot in self._slots
        )
        self._set_state("ready" if healthy else "degraded")

    async def _supervise(self) -> None:
        while not self._stopping:
            now = time.monotonic()
            for slot in self._slots:
                self._drain_messages(slot)
                alive = slot.process is not None and slot.process.is_alive()
                if alive:
                    if (
                        slot.consecutive
                        and now - slot.started_at > STABLE_SECONDS
                    ):
                        slot.consecutive = 0
                    continue
                if slot.restart_at == 0.0:
                    # Just noticed the death: schedule the respawn with
                    # bounded exponential backoff.
                    if slot.process is not None:
                        slot.process.join(timeout=0)
                    slot.ready = False
                    slot.restarts += 1
                    self.restarts_total += 1
                    delay = min(
                        BACKOFF_CAP,
                        BACKOFF_BASE * (2.0 ** min(slot.consecutive, 8)),
                    )
                    slot.consecutive += 1
                    slot.restart_at = now + delay
                elif now >= slot.restart_at:
                    slot.restart_at = 0.0
                    self._spawn(slot)
            self._refresh_state()
            await asyncio.sleep(POLL_INTERVAL)

    async def _wait_all_ready(self) -> None:
        deadline = time.monotonic() + READY_TIMEOUT
        while time.monotonic() < deadline:
            for slot in self._slots:
                self._drain_messages(slot)
                if (
                    slot.process is not None
                    and not slot.process.is_alive()
                    and not self._stopping
                ):
                    raise RuntimeError(
                        f"worker {slot.slot} exited during startup "
                        f"(code {slot.process.exitcode})"
                    )
            if all(slot.ready for slot in self._slots):
                self._set_state("ready")
                return
            await asyncio.sleep(0.02)
        raise RuntimeError(
            f"worker pool not ready after {READY_TIMEOUT:.0f}s"
        )

    # ------------------------------------------------------------------
    # Admin plane
    # ------------------------------------------------------------------

    async def _admin_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except Exception:
                request = None
            if request is None:
                return
            response = await self._admin_route(request)
            writer.write(response.to_bytes())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _admin_route(self, request) -> HttpResponse:
        segments = split_path(request.path)
        if segments == ():
            return self._json_response(
                {
                    "service": "repro-serve-supervisor",
                    "schema_version": SCHEMA_VERSION,
                    "endpoints": ["GET /healthz", "GET /metrics"],
                    "serving": f"http://{self.host}:{self.port}",
                }
            )
        if segments == ("healthz",):
            return self._json_response(self.health_payload())
        if segments == ("metrics",):
            return self._json_response(await self.metrics_payload())
        return HttpResponse.error(404, f"no such endpoint: {request.path}")

    @staticmethod
    def _json_response(payload: dict) -> HttpResponse:
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def health_payload(self) -> Dict[str, object]:
        return {
            "status": self._state,
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "processes": self.processes,
            "restarts_total": self.restarts_total,
            "history": [
                {"at": round(at, 3), "state": state}
                for at, state in self.state_history
            ],
            "workers": [
                {
                    "worker": slot.slot,
                    "pid": slot.process.pid if slot.process else None,
                    "alive": bool(slot.process and slot.process.is_alive()),
                    "ready": slot.ready,
                    "restarts": slot.restarts,
                    "control_port": slot.control_port,
                }
                for slot in self._slots
            ],
        }

    async def metrics_payload(self) -> Dict[str, object]:
        scrapes = await asyncio.gather(
            *(
                _fetch_json("127.0.0.1", slot.control_port, "/metrics")
                if slot.control_port is not None
                and slot.process is not None
                and slot.process.is_alive()
                else _none()
                for slot in self._slots
            )
        )
        workers = {
            str(slot.slot): scrape
            for slot, scrape in zip(self._slots, scrapes)
        }
        return {
            "schema_version": SCHEMA_VERSION,
            "supervisor": {
                "mode": self.mode,
                "processes": self.processes,
                "state": self._state,
                "restarts_total": self.restarts_total,
            },
            "aggregated": aggregate_worker_metrics(workers),
            "workers": workers,
        }

    # ------------------------------------------------------------------
    # Run / drain
    # ------------------------------------------------------------------

    async def run(
        self,
        ready: Optional[Callable[["ServeSupervisor"], None]] = None,
        stop_event: Optional[asyncio.Event] = None,
        profile_json: Optional[str] = None,
    ) -> int:
        """Serve until stopped; returns the process exit code."""
        self._admin_server = await asyncio.start_server(
            self._admin_connection, self._admin_host, self._admin_port_requested
        )
        self.admin_port = self._admin_server.sockets[0].getsockname()[1]
        for slot in self._slots:
            self._spawn(slot)
        # The inherited listen socket lives on in the workers; the
        # parent must stop holding it open so drain actually closes it.
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        await self._wait_all_ready()
        if ready is not None:
            ready(self)

        event = stop_event if stop_event is not None else asyncio.Event()
        loop = asyncio.get_running_loop()
        if stop_event is None:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, event.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        supervisor_task = asyncio.ensure_future(self._supervise())
        stop_task = asyncio.ensure_future(event.wait())
        try:
            await asyncio.wait(
                [supervisor_task, stop_task],
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            self._stopping = True
            self._set_state("live")
            if profile_json:
                await self._write_profile(profile_json)
            supervisor_task.cancel()
            stop_task.cancel()
            await asyncio.gather(
                supervisor_task, stop_task, return_exceptions=True
            )
            await self._drain_workers()
            self._admin_server.close()
            await self._admin_server.wait_closed()
            if self._placeholder is not None:
                self._placeholder.close()
            if self._owns_shared_dir:
                shutil.rmtree(self.shared_dir, ignore_errors=True)
        return 0

    async def _write_profile(self, path: str) -> None:
        """Final aggregated scrape, written while workers still answer."""
        try:
            payload = await self.metrics_payload()
        except Exception:  # pragma: no cover - best effort on shutdown
            return
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:  # pragma: no cover
            print(f"could not write {path}: {exc}", file=sys.stderr)

    async def _drain_workers(self) -> None:
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                try:
                    os.kill(slot.process.pid, signal.SIGTERM)
                except (OSError, TypeError):
                    pass
        deadline = time.monotonic() + DRAIN_TIMEOUT
        for slot in self._slots:
            if slot.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            await asyncio.get_running_loop().run_in_executor(
                None, slot.process.join, remaining
            )
            if slot.process.is_alive():  # pragma: no cover - stuck worker
                slot.process.kill()
                slot.process.join(timeout=5)


async def _none() -> None:
    return None


async def run_supervised(
    context,
    host: str = "127.0.0.1",
    port: int = 8321,
    processes: int = 2,
    ready=None,
    stop_event: Optional[asyncio.Event] = None,
    admin_port: int = 0,
    shared_dir: Optional[str] = None,
    profile_json: Optional[str] = None,
    **options,
) -> int:
    """``run_service``'s multi-process sibling (``serve --processes N``)."""
    supervisor = ServeSupervisor(
        context,
        host=host,
        port=port,
        processes=processes,
        admin_port=admin_port,
        shared_dir=shared_dir,
        **options,
    )
    return await supervisor.run(
        ready=ready, stop_event=stop_event, profile_json=profile_json
    )
