"""The archive-backed query service: ``repro serve``.

An asyncio HTTP/1.1 server over one
:class:`~repro.api.facade.AnalysisFacade`.  Every endpoint — including
the convenience routes — normalises its input into a
:class:`~repro.api.spec.QuerySpec` and goes through one code path, the
same one ``repro query`` uses offline, so both emit byte-identical
canonical JSON.

Serving mechanics:

* **result cache** — canonical JSON texts in an LRU keyed by
  :meth:`QuerySpec.cache_key` (hits skip all computation);
* **request coalescing** — concurrent identical queries await a single
  in-flight computation instead of repeating it;
* **bounded concurrency + backpressure** — computations run on a
  fixed-size thread pool; once the number of distinct in-flight
  computations reaches the queue limit, new work is refused with
  ``503`` and a ``Retry-After`` header rather than queued without bound;
* **per-request deadlines** — every request carries a time budget
  (``X-Repro-Deadline-Ms`` header, else the server default); a blown
  budget answers ``504`` instead of hanging, and the in-flight
  computation exits at its next phase boundary
  (see :mod:`repro.api.deadline`);
* **circuit breaker + serve-stale degraded mode** — classified backend
  failures open a :class:`~repro.service.resilience.CircuitBreaker`;
  while it is open, queries the result LRU can answer are served
  **stale** (byte-identical body, ``X-Repro-Stale``/``Warning``
  headers) and everything else gets ``503`` + ``Retry-After``; after
  the cooldown a bounded probe either closes it or re-opens it;
* **graceful shutdown** — stop accepting, cancel computations still
  queued for the worker pool (their clients get a clean ``503``),
  drain in-flight work, then close (``repro serve`` wires this to
  SIGINT/SIGTERM).

* **live follow mode** — with ``--follow`` a leader thread runs the
  :class:`~repro.live.FollowEngine`, extending the archive day by day
  and publishing change events; ``/v1/events?since=`` pages the
  durable event log and ``/v1/events/stream`` pushes it as SSE with
  ``Last-Event-ID`` resume and bounded-buffer gap markers.  The follow
  degradation ladder (``following|lagging|stalled``) rides on
  ``/healthz`` with ``ingest_lag_days``; while stalled, queries keep
  serving with stale-mode headers.

Per-endpoint request/latency counters, breaker state, and the
context's sweep/cache metrics are exposed at ``GET /metrics``;
``GET /healthz`` reports the ``live|ready|degraded`` serving state.
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future as ConcurrentFuture
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from ..api.deadline import MAX_DEADLINE_MS, Deadline, deadline_scope
from ..api.spec import SCHEMA_VERSION, QuerySpec, jsonify
from ..errors import DeadlineExceeded, QueryError, ReproError
from ..faults import TransientIOError, WorkerCrashed, sync_fault_metrics
from ..live import (
    STALLED,
    EventLog,
    FollowEngine,
    FollowOptions,
    encode_comment,
    encode_event_frame,
    encode_gap_frame,
    read_follow_status,
)
from .http import HttpError, HttpRequest, HttpResponse, read_request, split_path
from .shared_cache import Lease, SharedResultCache
from .resilience import (
    ADMIT_DENY,
    ADMIT_PROBE,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)

__all__ = ["QueryService", "run_service"]

#: Defaults for the serving knobs (also the CLI defaults).
DEFAULT_MAX_CONCURRENCY = 4
DEFAULT_QUEUE_LIMIT = 32
DEFAULT_CACHE_RESULTS = 128
DEFAULT_RETRY_AFTER = 1
DEFAULT_DEADLINE_MS = 30_000
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_WINDOW = 30.0
DEFAULT_BREAKER_COOLDOWN = 2.0
#: Slow-consumer bound: events buffered per SSE subscriber before the
#: server skips ahead with an explicit gap frame.
DEFAULT_SSE_BUFFER = 64
#: How often the SSE pump polls the durable event log, seconds.
DEFAULT_SSE_POLL = 0.05
#: Idle seconds between SSE keepalive comments.
DEFAULT_SSE_KEEPALIVE = 2.0
#: Most events one /v1/events page returns.
MAX_EVENT_PAGE = 500

#: The request header carrying an SSE client's resume position.
LAST_EVENT_ID_HEADER = "last-event-id"

#: The request header carrying a per-request deadline budget.
DEADLINE_HEADER = "x-repro-deadline-ms"

#: Response headers marking a degraded-mode answer from the result LRU.
STALE_HEADERS = {
    "X-Cache": "stale",
    "X-Repro-Stale": "true",
    "Warning": '110 repro-query-service "stale response served while degraded"',
}

#: Spec fields accepted as query-string parameters on GET /v1/query.
_PARAM_FIELDS = (
    "kind", "experiment", "series", "start", "end",
    "date", "tld", "offset", "limit",
)

#: GET /v2/query additionally accepts the scenario dimension.  /v1
#: deliberately does not: legacy payloads have no scenario field, so
#: they keep their exact pre-v2 cache keys (spec-side normalisation
#: maps an absent scenario to baseline).
_PARAM_FIELDS_V2 = _PARAM_FIELDS + ("scenario",)

#: Breaker transition → metrics counter name.
_BREAKER_COUNTERS = {
    OPEN: "breaker_opened",
    HALF_OPEN: "breaker_half_open",
    CLOSED: "breaker_closed",
}


class QueryService:
    """One serving instance over an experiment context."""

    def __init__(
        self,
        context,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_results: int = DEFAULT_CACHE_RESULTS,
        retry_after: int = DEFAULT_RETRY_AFTER,
        deadline_ms: int = DEFAULT_DEADLINE_MS,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_window: float = DEFAULT_BREAKER_WINDOW,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        shared_cache: Optional[SharedResultCache] = None,
        worker_id: Optional[int] = None,
        follow: Optional[FollowOptions] = None,
        follow_leader: bool = True,
        follow_detectors=None,
        sse_buffer: int = DEFAULT_SSE_BUFFER,
        sse_poll: float = DEFAULT_SSE_POLL,
    ) -> None:
        if max_concurrency < 1:
            raise QueryError(f"max_concurrency must be >= 1: {max_concurrency}")
        if queue_limit < 1:
            raise QueryError(f"queue_limit must be >= 1: {queue_limit}")
        if deadline_ms < 1:
            raise QueryError(f"deadline_ms must be >= 1: {deadline_ms}")
        self._context = context
        self._facade = context.api
        self._metrics = context.metrics
        self._faults = getattr(context, "faults", None)
        self._queue_limit = int(queue_limit)
        self._retry_after = max(1, int(retry_after))
        self._cache_results = max(0, int(cache_results))
        self._deadline_ms = min(int(deadline_ms), MAX_DEADLINE_MS)
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            window_seconds=breaker_window,
            cooldown_seconds=breaker_cooldown,
            on_transition=self._note_breaker_transition,
        )
        self._cache: "OrderedDict[str, str]" = OrderedDict()
        self._inflight: Dict[str, asyncio.Future] = {}
        #: The executor futures behind ``_inflight``; shutdown cancels
        #: the ones a worker thread has not picked up yet.
        self._pending: Dict[str, ConcurrentFuture] = {}
        #: Per-key compute ordinals (fault-decision keys re-roll on retry).
        self._compute_counts: Dict[str, int] = {}
        #: Per-path response-write ordinals, same purpose.
        self._write_counts: Dict[str, int] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=int(max_concurrency), thread_name_prefix="repro-query"
        )
        #: Cross-worker result store when this service is one worker of
        #: a ``--processes N`` pool (see :mod:`repro.service.multiproc`).
        self._shared = shared_cache
        #: Pool slot id, tagged into /healthz and /metrics.
        self.worker_id = worker_id
        self._server: Optional[asyncio.AbstractServer] = None
        self._extra_servers: List[asyncio.AbstractServer] = []
        self._connections: Set[asyncio.Task] = set()
        self._closing = False
        # ---- live follow mode -------------------------------------
        #: The archive directory live state (journal, event log,
        #: status) lives in; None for purely simulated contexts.
        archive = getattr(context, "archive", None)
        self._archive_dir: Optional[str] = (
            archive.directory if archive is not None else None
        )
        self._follow_options = follow
        #: Whether *this* instance runs the follow engine.  In a
        #: ``--processes N`` pool only slot 0 leads; every worker still
        #: serves events, health, and stale-mode queries from the
        #: durable state the leader writes.
        self._follow_leader = bool(follow_leader)
        self._follow_detectors = follow_detectors
        self._follow_engine: Optional[FollowEngine] = None
        self._follow_thread: Optional[threading.Thread] = None
        self._follow_stop = threading.Event()
        self._event_log: Optional[EventLog] = (
            EventLog(self._archive_dir) if self._archive_dir else None
        )
        self._sse_buffer = max(1, int(sse_buffer))
        self._sse_poll = float(sse_poll)
        #: (monotonic stamp, payload) cache for the cross-worker
        #: status-file read, so stale-mode checks stay off the hot path.
        self._follow_status_cache: Tuple[float, Optional[Dict]] = (-1.0, None)
        if follow is not None and self._archive_dir is None:
            raise QueryError(
                "follow mode needs an archive-backed context "
                "(the follow engine extends an archive directory)"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: Optional[socket_module.socket] = None,
    ) -> None:
        """Bind and start accepting connections.

        ``sock`` (an already-bound listening socket) takes precedence
        over ``host``/``port`` — the pre-fork worker pool passes each
        worker its SO_REUSEPORT or inherited listen socket this way.
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host, port
            )
        if self._follow_options is not None and self._follow_leader:
            self._start_follow()

    async def add_listener(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind one extra listening endpoint (same routing); returns its port.

        Pool workers use this for a loopback *control* listener the
        supervisor scrapes for per-worker ``/metrics`` independently of
        the kernel's load balancing on the shared serving port.
        """
        server = await asyncio.start_server(self._on_connection, host, port)
        self._extra_servers.append(server)
        return server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise QueryError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def breaker(self) -> CircuitBreaker:
        """The serving circuit breaker (tests and /metrics read it)."""
        return self._breaker

    async def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: refuse new connections, drain in-flight work.

        Computations still *queued* for the worker pool are cancelled
        up front — their handlers answer a clean ``503`` immediately —
        while computations a worker already picked up drain normally.
        """
        self._closing = True
        self._follow_stop.set()
        if self._follow_thread is not None:
            self._follow_thread.join(timeout=timeout)
        for server in [self._server, *self._extra_servers]:
            if server is not None:
                server.close()
                await server.wait_closed()
        for pending in list(self._pending.values()):
            pending.cancel()  # only succeeds before a worker starts it
        deadline = time.monotonic() + timeout
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        request: Optional[HttpRequest] = None
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                response = HttpResponse.error(400, str(exc))
            else:
                if request is None:
                    return
                if self._is_sse_request(request):
                    # Streaming departs from the one-shot render path:
                    # frames go out as the event log grows.
                    await self._serve_sse(request, writer)
                    return
                response = await self.handle(request)
            payload = self._render_payload(request, response)
            if payload is None:
                # Injected response-write failure: the connection dies
                # mid-response, exactly like a flaky network path; the
                # resilient client's retry budget covers this.
                self._metrics.record_counter("responses_aborted")
                return
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            if task is not None:
                self._connections.discard(task)

    def _render_payload(
        self, request: Optional[HttpRequest], response: HttpResponse
    ) -> Optional[bytes]:
        """Wire bytes for one response, or None on an injected write fault."""
        payload = response.to_bytes()
        if self._faults is None or request is None:
            return payload
        ordinal = self._write_counts.get(request.path, 0)
        self._write_counts[request.path] = ordinal + 1
        try:
            return self._faults.corrupt_bytes(
                "service.response_write", f"{request.path}#{ordinal}", payload
            )
        except (TransientIOError, WorkerCrashed):
            return None

    # ------------------------------------------------------------------
    # Live follow mode
    # ------------------------------------------------------------------

    def _start_follow(self) -> None:
        """Spin up the follow engine on its own thread (the leader)."""
        engine = FollowEngine(
            self._archive_dir,
            self._context.config,
            options=self._follow_options,
            detectors=self._follow_detectors,
            faults=self._faults,
            metrics=self._metrics,
        )
        engine.resume()
        self._follow_engine = engine
        self._follow_thread = threading.Thread(
            target=self._follow_loop, name="repro-follow", daemon=True
        )
        self._follow_thread.start()

    def _follow_loop(self) -> None:
        """The leader's ingest loop.  Never lets a failure escape.

        :meth:`FollowEngine.advance` already absorbs per-day ingest
        problems into the degradation ladder; the catch-all here is the
        last line of the "never crash the serving pool" contract — an
        unforeseen error degrades the feed, not the service.
        """
        engine = self._follow_engine
        while not self._follow_stop.is_set() and not engine.done:
            try:
                checkpoint = engine.advance()
            except Exception:
                self._metrics.record_counter("live_follow_errors")
                checkpoint = None
            if checkpoint is not None and self._context.archive is not None:
                try:
                    # Newly ingested days become queryable immediately.
                    self._context.archive.reload()
                except ReproError:
                    pass
            interval = engine.options.interval_seconds
            if checkpoint is None:
                # Failed cycles must not busy-spin the retry ladder.
                interval = max(interval, 0.05)
            if interval > 0:
                self._follow_stop.wait(interval)

    def _follow_status_doc(self) -> Optional[Dict]:
        """This instance's view of the follow state.

        The leader answers from its in-process engine; every other
        worker (and a server merely pointed at a previously-followed
        archive) reads the advisory status file the leader mirrors,
        briefly cached to keep the stale-mode check off the hot path.
        """
        engine = self._follow_engine
        if engine is not None:
            return engine.status()
        if self._archive_dir is None:
            return None
        now = time.monotonic()
        stamp, cached = self._follow_status_cache
        if now - stamp < 0.25:
            return cached
        doc = read_follow_status(self._archive_dir)
        self._follow_status_cache = (now, doc)
        return doc

    def _follow_is_stalled(self) -> bool:
        doc = self._follow_status_doc()
        return doc is not None and doc.get("state") == STALLED

    # ------------------------------------------------------------------
    # The event feed: /v1/events and its SSE stream
    # ------------------------------------------------------------------

    def _events_response(self, request: HttpRequest) -> HttpResponse:
        """One page of the durable event log (``/v1/events?since=``)."""
        if self._event_log is None:
            return HttpResponse.error(
                404,
                "this instance serves a simulated context with no archive "
                "directory, so it has no event feed",
            )
        params = request.params
        try:
            since = int(params.get("since", 0))
            limit = int(params.get("limit", MAX_EVENT_PAGE))
        except ValueError as exc:
            raise HttpError(f"since/limit must be integers: {exc}") from exc
        if since < 0:
            raise HttpError(f"since must be >= 0: {since}")
        if limit < 1:
            raise HttpError(f"limit must be >= 1: {limit}")
        limit = min(limit, MAX_EVENT_PAGE)
        events = self._event_log.read_since(since, limit + 1)
        page = events[:limit]
        payload = {
            "schema_version": SCHEMA_VERSION,
            "since": since,
            "next": page[-1].seq if page else since,
            "more": len(events) > limit,
            "events": [event.to_dict() for event in page],
            "follow": self._follow_status_doc(),
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    @staticmethod
    def _is_sse_request(request: HttpRequest) -> bool:
        return (
            request.method == "GET"
            and split_path(request.path) == ("v1", "events", "stream")
        )

    def _sse_since(self, request: HttpRequest) -> int:
        """The stream's resume position: ``Last-Event-ID`` beats ``since``."""
        raw = request.headers.get(LAST_EVENT_ID_HEADER)
        if raw is None:
            raw = request.params.get("since", "0")
        try:
            since = int(raw)
        except ValueError as exc:
            raise HttpError(f"bad event stream position {raw!r}") from exc
        if since < 0:
            raise HttpError(f"event stream position must be >= 0: {since}")
        return since

    async def _serve_sse(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Pump the event log to one subscriber as an SSE stream.

        Frames carry ``id:`` lines (the event sequence number), so a
        dropped connection resumes exactly where it broke via
        ``Last-Event-ID``.  A consumer that falls more than the bounded
        buffer behind the log gets an explicit ``gap`` frame and is
        skipped ahead — dropped events stay durable in the log and
        remain fetchable through ``/v1/events``.
        """
        started = time.perf_counter()
        status = 200
        try:
            try:
                since = self._sse_since(request)
            except HttpError as exc:
                status = 400
                writer.write(HttpResponse.error(400, str(exc)).to_bytes())
                await writer.drain()
                return
            if self._event_log is None:
                status = 404
                writer.write(
                    HttpResponse.error(
                        404, "no event feed without an archive"
                    ).to_bytes()
                )
                await writer.drain()
                return
            limit: Optional[int] = None
            if "limit" in request.params:
                try:
                    limit = int(request.params["limit"])
                except ValueError:
                    limit = None
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream; charset=utf-8\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            writer.write(head)
            await writer.drain()
            self._metrics.record_counter("live_sse_streams")
            await self._sse_pump(writer, since, limit)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._metrics.record_endpoint(
                "events-stream", time.perf_counter() - started, status
            )
            self._metrics.record_counter("requests_total")

    async def _sse_pump(
        self,
        writer: asyncio.StreamWriter,
        since: int,
        limit: Optional[int],
    ) -> None:
        last_sent = since
        sent = 0
        idle = 0.0
        while not self._closing:
            pending = self._event_log.read_since(last_sent)
            if pending:
                idle = 0.0
                over = len(pending) - self._sse_buffer
                if over > 0:
                    # Slow consumer: drop the oldest backlog with an
                    # explicit marker instead of buffering without bound.
                    dropped_from = pending[0].seq
                    dropped_to = pending[over - 1].seq
                    pending = pending[over:]
                    self._metrics.record_counter("live_sse_dropped", over)
                    frame = encode_gap_frame(dropped_from, dropped_to)
                    if not await self._write_sse(writer, frame,
                                                 f"gap-{dropped_to}"):
                        return
                    last_sent = dropped_to
                for event in pending:
                    frame = encode_event_frame(event)
                    if not await self._write_sse(writer, frame,
                                                 str(event.seq)):
                        return
                    last_sent = event.seq
                    sent += 1
                    self._metrics.record_counter("live_sse_events")
                    if limit is not None and sent >= limit:
                        return
                continue
            doc = self._follow_status_doc()
            if doc is not None and doc.get("done"):
                # The follow range is fully ingested and the log is
                # drained: nothing more will ever arrive.
                return
            idle += self._sse_poll
            if idle >= DEFAULT_SSE_KEEPALIVE:
                idle = 0.0
                if not await self._write_sse(
                    writer, encode_comment("keepalive"), "keepalive"
                ):
                    return
            await asyncio.sleep(self._sse_poll)

    async def _write_sse(
        self, writer: asyncio.StreamWriter, frame: bytes, key: str
    ) -> bool:
        """Write one frame; False ends the stream (client will resume).

        With a fault plan attached, the write is split so an injected
        ``live.sse_write`` error tears the frame mid-way — the client
        parser discards the partial frame and reconnects with
        ``Last-Event-ID``, which is exactly the recovery contract.
        """
        try:
            if self._faults is not None:
                ordinal = self._write_counts.get("sse", 0)
                self._write_counts["sse"] = ordinal + 1
                half = len(frame) // 2
                writer.write(frame[:half])
                try:
                    self._faults.check("live.sse_write", f"{key}#{ordinal}")
                except (TransientIOError, WorkerCrashed):
                    self._metrics.record_counter("live_sse_aborted")
                    await writer.drain()
                    return False
                writer.write(frame[half:])
            else:
                writer.write(frame)
            await asyncio.wait_for(writer.drain(), timeout=5.0)
            return True
        except (ConnectionError, asyncio.TimeoutError,
                asyncio.CancelledError):
            return False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; records per-endpoint metrics."""
        started = time.perf_counter()
        endpoint, response = await self._route(request)
        elapsed = time.perf_counter() - started
        self._metrics.record_endpoint(endpoint, elapsed, response.status)
        self._metrics.record_counter("requests_total")
        return response

    def _request_deadline(self, request: HttpRequest) -> Deadline:
        """The request's time budget: header override or server default."""
        raw = request.headers.get(DEADLINE_HEADER)
        if raw is None:
            return Deadline.after_ms(self._deadline_ms)
        try:
            budget = int(raw)
        except ValueError as exc:
            raise HttpError(f"bad {DEADLINE_HEADER} header {raw!r}") from exc
        if budget < 1:
            raise HttpError(f"{DEADLINE_HEADER} must be >= 1: {budget}")
        return Deadline.after_ms(budget)

    async def _route(self, request: HttpRequest) -> Tuple[str, HttpResponse]:
        segments = split_path(request.path)
        try:
            if segments == ():
                return "root", self._info_response()
            if segments == ("healthz",):
                return "healthz", self._health_response()
            if segments == ("metrics",):
                return "metrics", self._metrics_response()
            if segments[0] not in ("v1", "v2"):
                return "unknown", HttpResponse.error(
                    404, f"no such endpoint: {request.path}"
                )
            deadline = self._request_deadline(request)
            if segments[0] == "v2":
                return await self._route_v2(request, segments[1:], deadline)
            return await self._route_v1(request, segments[1:], deadline)
        except HttpError as exc:
            return "bad-request", HttpResponse.error(400, str(exc))
        except QueryError as exc:
            return "bad-request", HttpResponse.error(400, str(exc))

    async def _route_v1(
        self, request: HttpRequest, tail: Tuple[str, ...], deadline: Deadline
    ) -> Tuple[str, HttpResponse]:
        params = request.params
        if tail == ("query",):
            if request.method == "POST":
                spec = QuerySpec.from_dict(self._object_body(request))
            elif request.method == "GET":
                spec = QuerySpec.from_dict(
                    {
                        field: params[field]
                        for field in _PARAM_FIELDS
                        if field in params
                    }
                )
            else:
                return "query", HttpResponse.error(
                    405, f"{request.method} not allowed on /v1/query"
                )
            return "query", await self._query_response(spec, deadline)
        if request.method != "GET":
            return "v1", HttpResponse.error(
                405, f"{request.method} not allowed on {request.path}"
            )
        if tail == ("events",):
            return "events", self._events_response(request)
        if tail == ("experiments",):
            return "experiments", await self._query_response(
                QuerySpec("catalog"), deadline
            )
        if len(tail) == 2 and tail[0] == "experiments":
            spec = QuerySpec("experiment", experiment=tail[1])
            return "experiments", await self._query_response(spec, deadline)
        if len(tail) == 2 and tail[0] == "series":
            spec = QuerySpec(
                "series",
                series=tail[1],
                start=params.get("start"),
                end=params.get("end"),
            )
            return "series", await self._query_response(spec, deadline)
        if tail == ("headline",):
            return "headline", await self._query_response(
                QuerySpec("headline"), deadline
            )
        if len(tail) == 2 and tail[0] == "records":
            spec = QuerySpec(
                "records",
                date=tail[1],
                tld=params.get("tld"),
                offset=params.get("offset"),
                limit=params.get("limit"),
            )
            return "records", await self._query_response(spec, deadline)
        return "unknown", HttpResponse.error(
            404, f"no such endpoint: {request.path}"
        )

    async def _route_v2(
        self, request: HttpRequest, tail: Tuple[str, ...], deadline: Deadline
    ) -> Tuple[str, HttpResponse]:
        """The scenario-dimensioned surface (see docs/scenarios.md).

        ``/v2/query`` is ``/v1/query`` plus the ``scenario`` field (and
        the ``diff`` kind); ``/v2/scenarios`` lists the worlds this
        instance serves; ``/v2/diff`` is sugar for a diff-kind query.
        Cache isolation needs no extra plumbing: the scenario is folded
        into :meth:`QuerySpec.cache_key`, which every caching layer
        (result LRU, coalescing, shared cross-worker store) keys on.
        """
        params = request.params
        if tail == ("query",):
            if request.method == "POST":
                spec = QuerySpec.from_dict(self._object_body(request))
            elif request.method == "GET":
                spec = QuerySpec.from_dict(
                    {
                        field: params[field]
                        for field in _PARAM_FIELDS_V2
                        if field in params
                    }
                )
            else:
                return "query", HttpResponse.error(
                    405, f"{request.method} not allowed on /v2/query"
                )
            return "query", await self._query_response(spec, deadline)
        if request.method != "GET":
            return "v2", HttpResponse.error(
                405, f"{request.method} not allowed on {request.path}"
            )
        if tail == ("scenarios",):
            return "scenarios", self._scenarios_response()
        if tail == ("diff",):
            spec = QuerySpec(
                "diff",
                experiment=params.get("experiment"),
                scenario=params.get("scenario"),
            )
            return "diff", await self._query_response(spec, deadline)
        return "unknown", HttpResponse.error(
            404, f"no such endpoint: {request.path}"
        )

    def _scenarios_response(self) -> HttpResponse:
        """The scenario worlds this instance can answer queries for."""
        from ..scenario import LIBRARY

        entries = []
        for scenario_id in self._facade.scenario_ids():
            entry: Dict[str, object] = {"id": scenario_id}
            spec = LIBRARY.get(scenario_id)
            if spec is not None:
                entry["title"] = spec.title
                entry["spec_digest"] = spec.digest()
            entries.append(entry)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "default": "baseline",
            "scenarios": entries,
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    @staticmethod
    def _object_body(request: HttpRequest) -> Dict[str, object]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError("query spec body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # The unified query path:
    # cache -> breaker -> coalesce -> compute (under deadline)
    # ------------------------------------------------------------------

    async def _query_response(
        self, spec: QuerySpec, deadline: Deadline
    ) -> HttpResponse:
        response = await self._query_response_inner(spec, deadline)
        if response.status == 200 and self._follow_is_stalled():
            # The follow engine cannot keep the archive current, so
            # every answer is as-of the last good checkpoint: correct
            # bytes, marked stale.  Serving keeps working — the ladder
            # degrades the feed's freshness, never availability.
            for name, value in STALE_HEADERS.items():
                response.extra_headers.setdefault(name, value)
            self._metrics.record_counter("live_stale_served")
        return response

    async def _query_response_inner(
        self, spec: QuerySpec, deadline: Deadline
    ) -> HttpResponse:
        key = spec.cache_key()
        if self._closing:
            return self._shutdown_response()
        cached = self._cache_get(key)
        admission = self._breaker.admit()
        if cached is not None:
            if admission == ADMIT_PROBE:
                # A cache hit consumes no backend work; hand the probe
                # slot back without judging the backend either way.
                self._breaker.release_probe()
            if admission == ADMIT_DENY:
                # Degraded mode: the backend is failing, but we hold a
                # previously-fresh answer — serve it, marked stale.
                return self._stale_response(key, cached)
            self._metrics.record_cache("query_results", 1, 0)
            return HttpResponse.json(200, cached, {"X-Cache": "hit"})

        if admission == ADMIT_DENY:
            # A sibling worker may hold the answer even though this
            # worker's LRU does not: degraded mode serves it stale.
            shared_text = self._shared_get(key)
            if shared_text is not None:
                if self._cache_results:
                    self._cache_put(key, shared_text)
                return self._stale_response(key, shared_text)
            self._metrics.record_counter("breaker_rejected")
            return HttpResponse.error(
                503,
                "service degraded (circuit breaker open) and no cached "
                "answer exists for this query; retry shortly",
                {"Retry-After": str(self._breaker.retry_after())},
            )

        future = self._inflight.get(key)
        if future is not None:
            # Coalesce: ride the computation a concurrent identical
            # request already started (it keeps its own probe slot).
            if admission == ADMIT_PROBE:
                self._breaker.release_probe()
            self._metrics.record_cache("query_results", 1, 0)
            self._metrics.record_counter("requests_coalesced")
            try:
                status, text = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline.remaining()
                )
            except asyncio.TimeoutError:
                return self._deadline_response(key, deadline)
            header = "coalesced" if status == 200 else None
            return HttpResponse.json(
                status, text, {"X-Cache": header} if header else None
            )

        shared_text = self._shared_get(key)
        if shared_text is not None:
            # Another worker already computed this key: adopt its bytes
            # without touching the backend (no probe slot consumed).
            if admission == ADMIT_PROBE:
                self._breaker.release_probe()
            if self._cache_results:
                self._cache_put(key, shared_text)
            return HttpResponse.json(200, shared_text, {"X-Cache": "shared"})

        if len(self._inflight) >= self._queue_limit:
            if admission == ADMIT_PROBE:
                self._breaker.release_probe()
            self._metrics.record_counter("requests_rejected")
            return HttpResponse.error(
                503,
                f"query queue is full ({self._queue_limit} in flight); "
                "retry shortly",
                {"Retry-After": str(self._retry_after)},
            )

        probe = admission == ADMIT_PROBE
        self._metrics.record_cache("query_results", 0, 1)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        outcome = (503, self._error_text(503, "service shutting down"))
        lease: Optional[Lease] = None
        try:
            try:
                lease = self._acquire_lease(key)
                if self._shared is not None and lease is None:
                    # A sibling worker is computing this key right now:
                    # wait for its published result instead of doing the
                    # identical archive work a second time.
                    waited = await self._await_shared(key, deadline)
                    if waited is not None:
                        outcome = waited
                    else:
                        # The lease holder died or gave up without
                        # publishing; take over.
                        lease = self._acquire_lease(key)
                        outcome = await self._run_compute(spec, key, deadline)
                else:
                    outcome = await self._run_compute(spec, key, deadline)
            except asyncio.TimeoutError:
                # The worker thread exits at its next phase-boundary
                # deadline check; nobody is left waiting on it.
                outcome = (
                    504,
                    self._error_text(
                        504,
                        f"deadline of {deadline.budget_ms} ms exceeded "
                        "before the computation finished",
                    ),
                )
            except asyncio.CancelledError:
                # Shutdown cancelled a computation still queued for the
                # pool: answer a clean 503 instead of dropping the
                # connection.
                outcome = (503, self._error_text(503, "service shutting down"))
            except Exception as exc:  # defensive: _compute classifies its own
                outcome = (500, self._error_text(500, f"internal error: {exc}"))
        finally:
            # Resolve waiters and clear the slot even if we were cancelled
            # mid-shutdown, so coalesced requests never hang.
            if lease is not None:
                if outcome[0] == 200 and self._shared is not None:
                    # Publish before releasing: waiters polling the
                    # shared store must find the result, not a vanished
                    # lease that sends them back to computing.
                    self._shared.put(key, outcome[1])
                lease.release()
            self._pending.pop(key, None)
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(outcome)
        status, text = outcome
        self._account_outcome(status, probe)
        if status == 504:
            self._metrics.record_counter("deadline_exceeded")
        if status in (500, 504):
            stale = self._cache_get(key)
            if stale is None:
                stale = self._shared_get(key)
            if stale is not None:
                return self._stale_response(key, stale)
        if status == 200 and self._cache_results:
            self._cache_put(key, text)
        headers = (
            {"Retry-After": str(self._retry_after)}
            if status in (503, 504)
            else None
        )
        return HttpResponse.json(status, text, headers)

    async def _run_compute(
        self, spec: QuerySpec, key: str, deadline: Deadline
    ) -> Tuple[int, str]:
        """Submit one computation to the worker pool and await it."""
        ordinal = self._compute_counts.get(key, 0)
        self._compute_counts[key] = ordinal + 1
        pending = self._executor.submit(
            self._compute, spec, deadline, f"{key}#{ordinal}"
        )
        self._pending[key] = pending
        return await asyncio.wait_for(
            asyncio.shield(asyncio.wrap_future(pending)),
            timeout=deadline.remaining(),
        )

    # ------------------------------------------------------------------
    # Cross-worker shared cache (the --processes pool)
    # ------------------------------------------------------------------

    def _shared_get(self, key: str) -> Optional[str]:
        """A sibling worker's published result for ``key``, if any."""
        if self._shared is None:
            return None
        text = self._shared.get(key)
        if text is not None:
            self._metrics.record_cache("shared_results", 1, 0)
        else:
            self._metrics.record_cache("shared_results", 0, 1)
        return text

    def _acquire_lease(self, key: str) -> Optional[Lease]:
        if self._shared is None:
            return None
        return self._shared.acquire(key)

    async def _await_shared(
        self, key: str, deadline: Deadline
    ) -> Optional[Tuple[int, str]]:
        """Poll for a result another worker is computing.

        Returns the adopted ``(200, text)`` outcome, ``None`` when the
        lease holder vanished without publishing (the caller computes),
        and raises :class:`asyncio.TimeoutError` on a blown deadline
        exactly like a local computation would.
        """
        self._metrics.record_counter("requests_coalesced_shared")
        poll = 0.005
        while True:
            text = self._shared.get(key)
            if text is not None:
                self._metrics.record_cache("shared_results", 1, 0)
                return (200, text)
            if not self._shared.lease_pending(key):
                return None
            remaining = deadline.remaining()
            if remaining <= 0.0:
                raise asyncio.TimeoutError
            await asyncio.sleep(min(poll, remaining))
            poll = min(poll * 2.0, 0.05)

    def _account_outcome(self, status: int, probe: bool) -> None:
        """Feed one computation outcome to the breaker.

        5xx backend outcomes (internal errors, blown deadlines) are
        classified failures; 200 and 4xx prove the backend reachable
        and count as successes.  The shutdown 503 judges nothing.
        """
        if status in (500, 504):
            self._breaker.record_failure(probe=probe)
        elif status < 500:
            self._breaker.record_success(probe=probe)
        elif probe:
            self._breaker.release_probe()

    def _compute(
        self, spec: QuerySpec, deadline: Deadline, fault_key: str
    ) -> Tuple[int, str]:
        """Synchronous query execution (runs on the worker pool)."""
        try:
            with deadline_scope(deadline):
                deadline.check("compute_start")
                if self._faults is not None:
                    # In a pre-fork pool worker a scheduled KILL here
                    # really exits the process (the supervisor restarts
                    # it); in a single-process server it degrades to a
                    # survivable crash classified as a backend failure.
                    self._faults.check("service.worker_crash", fault_key)
                    self._faults.check("service.compute", fault_key)
                return 200, self._facade.query_json(spec)
        except DeadlineExceeded as exc:
            return 504, self._error_text(504, str(exc))
        except QueryError as exc:
            return 400, self._error_text(400, str(exc))
        except ReproError as exc:
            return 500, self._error_text(500, str(exc))
        except (OSError, RuntimeError) as exc:
            # Injected service faults and real IO trouble surface here
            # as classified backend failures the breaker counts.
            return 500, self._error_text(500, f"backend failure: {exc}")

    def _note_breaker_transition(self, previous: str, state: str) -> None:
        self._metrics.record_counter(_BREAKER_COUNTERS[state])

    # ------------------------------------------------------------------
    # Degraded-mode responses
    # ------------------------------------------------------------------

    def _stale_response(self, key: str, text: str) -> HttpResponse:
        """A previously-fresh cached answer, marked stale.

        The *body* is the cached canonical JSON, byte-identical to the
        fresh response; staleness travels only in headers, so offline,
        remote-fresh, and remote-stale answers all compare equal.
        """
        self._metrics.record_cache("query_results", 1, 0)
        self._metrics.record_counter("requests_stale")
        return HttpResponse.json(200, text, dict(STALE_HEADERS))

    def _deadline_response(self, key: str, deadline: Deadline) -> HttpResponse:
        self._metrics.record_counter("deadline_exceeded")
        stale = self._cache_get(key)
        if stale is not None:
            return self._stale_response(key, stale)
        return HttpResponse.error(
            504,
            f"deadline of {deadline.budget_ms} ms exceeded",
            {"Retry-After": str(self._retry_after)},
        )

    def _shutdown_response(self) -> HttpResponse:
        return HttpResponse.error(
            503, "service shutting down",
            {"Retry-After": str(self._retry_after)},
        )

    @staticmethod
    def _error_text(status: int, message: str) -> str:
        return json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "error": {"status": status, "message": message},
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    # ------------------------------------------------------------------
    # Result LRU
    # ------------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[str]:
        text = self._cache.get(key)
        if text is not None:
            self._cache.move_to_end(key)
        return text

    def _cache_put(self, key: str, text: str) -> None:
        self._cache[key] = text
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_results:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def _info_response(self) -> HttpResponse:
        payload = {
            "service": "repro-query-service",
            "schema_version": SCHEMA_VERSION,
            "endpoints": [
                "GET /healthz",
                "GET /metrics",
                "GET|POST /v1/query",
                "GET /v1/experiments",
                "GET /v1/experiments/<id>",
                "GET /v1/series/<name>?start=&end=",
                "GET /v1/headline",
                "GET /v1/records/<date>?tld=&offset=&limit=",
                "GET /v1/events?since=&limit=",
                "GET /v1/events/stream (SSE; Last-Event-ID resume)",
                "GET|POST /v2/query",
                "GET /v2/scenarios",
                "GET /v2/diff?experiment=&scenario=",
            ],
            "scenarios": self._facade.scenario_ids(),
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def _serving_state(self) -> str:
        """The ``live|ready|degraded`` state machine.

        ``live`` — the process answers but is not (or no longer)
        accepting query work: starting up or draining for shutdown;
        ``ready`` — healthy, breaker closed;
        ``degraded`` — the breaker is open or probing half-open, so
        queries are answered stale-from-cache or refused.
        """
        if self._closing or self._server is None:
            return "live"
        if self._breaker.state != CLOSED:
            return "degraded"
        return "ready"

    def _health_response(self) -> HttpResponse:
        payload = {
            "status": self._serving_state(),
            "closing": self._closing,
            "breaker": self._breaker.state,
            "schema_version": SCHEMA_VERSION,
            "inflight": len(self._inflight),
        }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        follow = self._follow_status_doc()
        if follow is not None:
            payload["follow"] = follow.get("state")
            payload["ingest_lag_days"] = follow.get("ingest_lag_days", 0)
            payload["follow_detail"] = {
                "last_date": follow.get("last_date"),
                "event_cursor": follow.get("event_cursor", 0),
                "consecutive_failures": follow.get(
                    "consecutive_failures", 0
                ),
                "done": follow.get("done", False),
            }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def _metrics_response(self) -> HttpResponse:
        sync_fault_metrics(self._faults, self._metrics)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "metrics": jsonify(self._metrics.summary()),
            "service": {
                "state": self._serving_state(),
                "inflight": len(self._inflight),
                "cached_results": len(self._cache),
                "queue_limit": self._queue_limit,
                "deadline_ms": self._deadline_ms,
                "breaker": self._breaker.snapshot(),
            },
        }
        if self.worker_id is not None:
            payload["service"]["worker"] = self.worker_id
        if self._shared is not None:
            payload["service"]["shared_cache"] = {
                "root": self._shared.root,
                "entries": len(self._shared),
            }
        follow = self._follow_status_doc()
        if follow is not None:
            payload["service"]["follow"] = follow
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )


async def run_service(
    context,
    host: str = "127.0.0.1",
    port: int = 8321,
    ready=None,
    stop_event: Optional[asyncio.Event] = None,
    **options,
) -> int:
    """Start a service, announce readiness, and serve until stopped.

    ``ready`` (if given) is called with the started :class:`QueryService`
    once the socket is bound; ``stop_event`` ends the loop (``repro
    serve`` sets it from SIGINT/SIGTERM).  Returns the process exit code.
    """
    service = QueryService(context, **options)
    await service.start(host, port)
    if ready is not None:
        ready(service)
    event = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    if stop_event is None:
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await event.wait()
    await service.shutdown()
    return 0
