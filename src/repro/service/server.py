"""The archive-backed query service: ``repro serve``.

An asyncio HTTP/1.1 server over one
:class:`~repro.api.facade.AnalysisFacade`.  Every endpoint — including
the convenience routes — normalises its input into a
:class:`~repro.api.spec.QuerySpec` and goes through one code path, the
same one ``repro query`` uses offline, so both emit byte-identical
canonical JSON.

Serving mechanics:

* **result cache** — canonical JSON texts in an LRU keyed by
  :meth:`QuerySpec.cache_key` (hits skip all computation);
* **request coalescing** — concurrent identical queries await a single
  in-flight computation instead of repeating it;
* **bounded concurrency + backpressure** — computations run on a
  fixed-size thread pool; once the number of distinct in-flight
  computations reaches the queue limit, new work is refused with
  ``503`` and a ``Retry-After`` header rather than queued without bound;
* **graceful shutdown** — stop accepting, drain in-flight work, then
  close (``repro serve`` wires this to SIGINT/SIGTERM).

Per-endpoint request/latency counters and the context's sweep/cache
metrics are exposed at ``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from ..api.spec import SCHEMA_VERSION, QueryResult, QuerySpec, jsonify
from ..errors import QueryError, ReproError
from .http import HttpError, HttpRequest, HttpResponse, read_request, split_path

__all__ = ["QueryService", "run_service"]

#: Defaults for the serving knobs (also the CLI defaults).
DEFAULT_MAX_CONCURRENCY = 4
DEFAULT_QUEUE_LIMIT = 32
DEFAULT_CACHE_RESULTS = 128
DEFAULT_RETRY_AFTER = 1

#: Spec fields accepted as query-string parameters on GET /v1/query.
_PARAM_FIELDS = (
    "kind", "experiment", "series", "start", "end",
    "date", "tld", "offset", "limit",
)


class QueryService:
    """One serving instance over an experiment context."""

    def __init__(
        self,
        context,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_results: int = DEFAULT_CACHE_RESULTS,
        retry_after: int = DEFAULT_RETRY_AFTER,
    ) -> None:
        if max_concurrency < 1:
            raise QueryError(f"max_concurrency must be >= 1: {max_concurrency}")
        if queue_limit < 1:
            raise QueryError(f"queue_limit must be >= 1: {queue_limit}")
        self._context = context
        self._facade = context.api
        self._metrics = context.metrics
        self._queue_limit = int(queue_limit)
        self._retry_after = max(1, int(retry_after))
        self._cache_results = max(0, int(cache_results))
        self._cache: "OrderedDict[str, str]" = OrderedDict()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=int(max_concurrency), thread_name_prefix="repro-query"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise QueryError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: refuse new connections, drain in-flight work."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + timeout
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                response = HttpResponse.error(400, str(exc))
            else:
                if request is None:
                    return
                response = await self.handle(request)
            writer.write(response.to_bytes())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            if task is not None:
                self._connections.discard(task)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; records per-endpoint metrics."""
        started = time.perf_counter()
        endpoint, response = await self._route(request)
        elapsed = time.perf_counter() - started
        self._metrics.record_endpoint(endpoint, elapsed, response.status)
        self._metrics.record_counter("requests_total")
        return response

    async def _route(self, request: HttpRequest) -> Tuple[str, HttpResponse]:
        segments = split_path(request.path)
        try:
            if segments == ():
                return "root", self._info_response()
            if segments == ("healthz",):
                return "healthz", self._health_response()
            if segments == ("metrics",):
                return "metrics", self._metrics_response()
            if segments[0] != "v1":
                return "unknown", HttpResponse.error(
                    404, f"no such endpoint: {request.path}"
                )
            return await self._route_v1(request, segments[1:])
        except HttpError as exc:
            return "bad-request", HttpResponse.error(400, str(exc))
        except QueryError as exc:
            return "bad-request", HttpResponse.error(400, str(exc))

    async def _route_v1(
        self, request: HttpRequest, tail: Tuple[str, ...]
    ) -> Tuple[str, HttpResponse]:
        params = request.params
        if tail == ("query",):
            if request.method == "POST":
                spec = QuerySpec.from_dict(self._object_body(request))
            elif request.method == "GET":
                spec = QuerySpec.from_dict(
                    {
                        field: params[field]
                        for field in _PARAM_FIELDS
                        if field in params
                    }
                )
            else:
                return "query", HttpResponse.error(
                    405, f"{request.method} not allowed on /v1/query"
                )
            return "query", await self._query_response(spec)
        if request.method != "GET":
            return "v1", HttpResponse.error(
                405, f"{request.method} not allowed on {request.path}"
            )
        if tail == ("experiments",):
            return "experiments", await self._query_response(
                QuerySpec("catalog")
            )
        if len(tail) == 2 and tail[0] == "experiments":
            spec = QuerySpec("experiment", experiment=tail[1])
            return "experiments", await self._query_response(spec)
        if len(tail) == 2 and tail[0] == "series":
            spec = QuerySpec(
                "series",
                series=tail[1],
                start=params.get("start"),
                end=params.get("end"),
            )
            return "series", await self._query_response(spec)
        if tail == ("headline",):
            return "headline", await self._query_response(QuerySpec("headline"))
        if len(tail) == 2 and tail[0] == "records":
            spec = QuerySpec(
                "records",
                date=tail[1],
                tld=params.get("tld"),
                offset=params.get("offset"),
                limit=params.get("limit"),
            )
            return "records", await self._query_response(spec)
        return "unknown", HttpResponse.error(
            404, f"no such endpoint: {request.path}"
        )

    @staticmethod
    def _object_body(request: HttpRequest) -> Dict[str, object]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError("query spec body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # The unified query path: cache -> coalesce -> compute
    # ------------------------------------------------------------------

    async def _query_response(self, spec: QuerySpec) -> HttpResponse:
        key = spec.cache_key()
        cached = self._cache_get(key)
        if cached is not None:
            self._metrics.record_cache("query_results", 1, 0)
            return HttpResponse.json(200, cached, {"X-Cache": "hit"})

        future = self._inflight.get(key)
        if future is not None:
            # Coalesce: ride the computation a concurrent identical
            # request already started.
            self._metrics.record_cache("query_results", 1, 0)
            self._metrics.record_counter("requests_coalesced")
            status, text = await asyncio.shield(future)
            header = "coalesced" if status == 200 else None
            return HttpResponse.json(
                status, text, {"X-Cache": header} if header else None
            )

        if len(self._inflight) >= self._queue_limit:
            self._metrics.record_counter("requests_rejected")
            return HttpResponse.error(
                503,
                f"query queue is full ({self._queue_limit} in flight); "
                "retry shortly",
                {"Retry-After": str(self._retry_after)},
            )

        self._metrics.record_cache("query_results", 0, 1)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        outcome = (503, self._error_text(503, "service shutting down"))
        try:
            try:
                outcome = await loop.run_in_executor(
                    self._executor, self._compute, spec
                )
            except Exception as exc:  # defensive: _compute handles ReproError
                outcome = (500, self._error_text(500, f"internal error: {exc}"))
        finally:
            # Resolve waiters and clear the slot even if we were cancelled
            # mid-shutdown, so coalesced requests never hang.
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(outcome)
        status, text = outcome
        if status == 200 and self._cache_results:
            self._cache_put(key, text)
        return HttpResponse.json(status, text)

    def _compute(self, spec: QuerySpec) -> Tuple[int, str]:
        """Synchronous query execution (runs on the worker pool)."""
        try:
            return 200, self._facade.query_json(spec)
        except QueryError as exc:
            return 400, self._error_text(400, str(exc))
        except ReproError as exc:
            return 500, self._error_text(500, str(exc))

    @staticmethod
    def _error_text(status: int, message: str) -> str:
        return json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "error": {"status": status, "message": message},
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    # ------------------------------------------------------------------
    # Result LRU
    # ------------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[str]:
        text = self._cache.get(key)
        if text is not None:
            self._cache.move_to_end(key)
        return text

    def _cache_put(self, key: str, text: str) -> None:
        self._cache[key] = text
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_results:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def _info_response(self) -> HttpResponse:
        payload = {
            "service": "repro-query-service",
            "schema_version": SCHEMA_VERSION,
            "endpoints": [
                "GET /healthz",
                "GET /metrics",
                "GET|POST /v1/query",
                "GET /v1/experiments",
                "GET /v1/experiments/<id>",
                "GET /v1/series/<name>?start=&end=",
                "GET /v1/headline",
                "GET /v1/records/<date>?tld=&offset=&limit=",
            ],
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def _health_response(self) -> HttpResponse:
        payload = {
            "status": "closing" if self._closing else "ok",
            "schema_version": SCHEMA_VERSION,
            "inflight": len(self._inflight),
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    def _metrics_response(self) -> HttpResponse:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "metrics": jsonify(self._metrics.summary()),
            "service": {
                "inflight": len(self._inflight),
                "cached_results": len(self._cache),
                "queue_limit": self._queue_limit,
            },
        }
        return HttpResponse.json(
            200, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )


async def run_service(
    context,
    host: str = "127.0.0.1",
    port: int = 8321,
    ready=None,
    stop_event: Optional[asyncio.Event] = None,
    **options,
) -> int:
    """Start a service, announce readiness, and serve until stopped.

    ``ready`` (if given) is called with the started :class:`QueryService`
    once the socket is bound; ``stop_event`` ends the loop (``repro
    serve`` sets it from SIGINT/SIGTERM).  Returns the process exit code.
    """
    service = QueryService(context, **options)
    await service.start(host, port)
    if ready is not None:
        ready(service)
    event = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    if stop_event is None:
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await event.wait()
    await service.shutdown()
    return 0
