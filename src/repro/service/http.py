"""Minimal asyncio HTTP/1.1 plumbing for the query service.

Just enough protocol for a JSON API on the stdlib: parse one request
(request line, headers, optional ``Content-Length`` body), write one
response, close the connection.  ``Connection: close`` semantics keep
the state machine trivial — every request gets a fresh connection,
which is also what the equivalence and smoke suites exercise.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "split_path",
]

#: Upper bounds keeping a misbehaving client from ballooning memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or oversized request (maps to a 400 response)."""


class HttpRequest:
    """One parsed request."""

    __slots__ = ("method", "target", "path", "params", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.target = target
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        #: Query-string parameters (last occurrence wins).
        self.params = dict(parse_qsl(parts.query, keep_blank_values=True))
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """The request body decoded as JSON."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(f"request body is not valid JSON: {exc}") from exc

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.target!r})"


class HttpResponse:
    """One response, rendered to wire bytes."""

    __slots__ = ("status", "body", "content_type", "extra_headers")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.extra_headers = dict(extra_headers or {})

    @classmethod
    def json(
        cls,
        status: int,
        text: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        """A JSON response from already-canonical text."""
        return cls(status, text.encode("utf-8"), extra_headers=extra_headers)

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        """The uniform JSON error envelope."""
        from ..api.spec import SCHEMA_VERSION

        payload = json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "error": {"status": status, "message": message},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return cls.json(status, payload, extra_headers=extra_headers)

    def to_bytes(self) -> bytes:
        """The full HTTP/1.1 wire form (Connection: close)."""
        reason = _REASONS.get(self.status, "Unknown")
        headers = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}; charset=utf-8",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        headers.extend(
            f"{name}: {value}" for name, value in self.extra_headers.items()
        )
        head = "\r\n".join(headers) + "\r\n\r\n"
        return head.encode("ascii") + self.body


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off the stream; None on a clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError("connection closed mid request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError("request line too long") from exc
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError("request line too long")
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError as exc:
        raise HttpError(f"malformed request line: {line!r}") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError as exc:
            raise HttpError("header line too long") from exc
        except asyncio.IncompleteReadError as exc:
            raise HttpError("connection closed mid headers") from exc
        if raw in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError("too many headers")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise HttpError("undecodable header") from exc
        if not _:
            raise HttpError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError("bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(f"unacceptable Content-Length {length}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError("connection closed mid body") from exc
    try:
        return HttpRequest(method.upper(), target, headers, body)
    except ValueError as exc:  # urlsplit rejects some malformed targets
        raise HttpError(f"unparsable request target {target!r}: {exc}") from exc


def split_path(path: str) -> Tuple[str, ...]:
    """Path segments without empty parts (``/v1/series/x`` -> v1, series, x)."""
    return tuple(segment for segment in path.split("/") if segment)
