"""Serving-side failure containment: the circuit breaker.

The breaker sits between the HTTP layer and the facade/archive
computation.  Classified backend failures (5xx outcomes: internal
errors, injected faults surfacing from the archive, blown deadlines)
feed a sliding window; once the window holds ``failure_threshold``
failures the breaker **opens** and the service stops burning worker
threads on a backend that is currently failing — answering from the
result LRU with stale markers where it can, and with ``503`` +
``Retry-After`` where it cannot.  After ``cooldown_seconds`` the
breaker goes **half-open** and admits a bounded number of probe
computations; one probe success closes it again, one probe failure
re-opens it.

The breaker is driven only from the event loop, so it needs no lock;
transition counters are mirrored into :class:`SweepMetrics` (which is
itself thread-safe) through the ``on_transition`` callback.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..errors import QueryError

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "ADMIT_FRESH", "ADMIT_PROBE",
           "ADMIT_DENY", "CircuitBreaker"]

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Admission decisions: compute normally, compute as a recovery probe,
#: or do not compute (serve stale / refuse).
ADMIT_FRESH = "fresh"
ADMIT_PROBE = "probe"
ADMIT_DENY = "deny"


class CircuitBreaker:
    """Closed → open → half-open state machine over classified failures."""

    def __init__(
        self,
        failure_threshold: int = 5,
        window_seconds: float = 30.0,
        cooldown_seconds: float = 2.0,
        half_open_probes: int = 1,
        on_transition: Optional[Callable[[str, str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise QueryError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if window_seconds <= 0.0:
            raise QueryError(f"window_seconds must be > 0: {window_seconds}")
        if cooldown_seconds < 0.0:
            raise QueryError(f"cooldown_seconds must be >= 0: {cooldown_seconds}")
        if half_open_probes < 1:
            raise QueryError(f"half_open_probes must be >= 1: {half_open_probes}")
        self.failure_threshold = int(failure_threshold)
        self.window_seconds = float(window_seconds)
        self.cooldown_seconds = float(cooldown_seconds)
        self.half_open_probes = int(half_open_probes)
        self._on_transition = on_transition
        self._clock = clock
        self._state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._transitions: Dict[str, int] = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state (refreshing open → half-open on cooldown)."""
        if self._state == OPEN and self._cooldown_over():
            self._transition(HALF_OPEN)
        return self._state

    def _cooldown_over(self) -> bool:
        return self._clock() - self._opened_at >= self.cooldown_seconds

    def _transition(self, state: str) -> None:
        previous = self._state
        if previous == state:
            return
        self._state = state
        self._transitions[state] += 1
        if state == OPEN:
            self._opened_at = self._clock()
        if state == HALF_OPEN:
            self._probes_inflight = 0
        if state == CLOSED:
            self._failures.clear()
            self._probes_inflight = 0
        if self._on_transition is not None:
            self._on_transition(previous, state)

    def _prune(self) -> None:
        horizon = self._clock() - self.window_seconds
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    # ------------------------------------------------------------------
    # Admission + accounting
    # ------------------------------------------------------------------

    def admit(self) -> str:
        """Decide how one computation may proceed right now.

        :data:`ADMIT_FRESH` while closed, :data:`ADMIT_PROBE` for the
        bounded half-open probes, :data:`ADMIT_DENY` otherwise.
        """
        state = self.state  # refreshes open → half-open
        if state == CLOSED:
            return ADMIT_FRESH
        if state == HALF_OPEN and self._probes_inflight < self.half_open_probes:
            self._probes_inflight += 1
            return ADMIT_PROBE
        return ADMIT_DENY

    def release_probe(self) -> None:
        """Hand back a probe admission that consumed no backend work.

        Cache hits, coalesced waits, and queue rejections admit as
        probes but never touch the backend — they must neither close
        nor re-open the breaker, only free the probe slot for a real
        computation.
        """
        self._probes_inflight = max(0, self._probes_inflight - 1)

    def record_success(self, probe: bool = False) -> None:
        """A computation succeeded; a successful probe closes the breaker."""
        if probe:
            self._probes_inflight = max(0, self._probes_inflight - 1)
        if self._state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self, probe: bool = False) -> None:
        """A classified failure; may open (or re-open) the breaker."""
        if probe:
            self._probes_inflight = max(0, self._probes_inflight - 1)
        if self._state == HALF_OPEN:
            self._transition(OPEN)
            return
        self._failures.append(self._clock())
        self._prune()
        if self._state == CLOSED and len(self._failures) >= self.failure_threshold:
            self._transition(OPEN)

    # ------------------------------------------------------------------
    # Introspection (what /metrics exposes)
    # ------------------------------------------------------------------

    def retry_after(self) -> int:
        """Whole seconds a denied client should wait before retrying."""
        if self._state != OPEN:
            return 1
        remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
        return max(1, int(remaining + 0.999))

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe view of the breaker for ``/metrics``."""
        self._prune()
        return {
            "state": self.state,
            "failures_in_window": len(self._failures),
            "failure_threshold": self.failure_threshold,
            "window_seconds": self.window_seconds,
            "cooldown_seconds": self.cooldown_seconds,
            "opened_total": self._transitions[OPEN],
            "half_open_total": self._transitions[HALF_OPEN],
            "closed_total": self._transitions[CLOSED],
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self._state}, "
            f"failures={len(self._failures)}/{self.failure_threshold})"
        )
