"""Active TLS scanning substrate (Censys CUIDS equivalent)."""

from .cuids import UniversalScanDataset
from .tls import ScanRecord, TlsScanner

__all__ = ["UniversalScanDataset", "ScanRecord", "TlsScanner"]
