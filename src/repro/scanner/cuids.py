"""The accumulated universal-scan dataset (Censys CUIDS equivalent).

Aggregates daily :class:`~repro.scanner.tls.TlsScanner` sweeps into a
queryable history of which certificates were *in active use*.  As the
paper notes, active scans are a lower bound on issuance — far more
certificates are issued than are ever observed serving.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, Iterable, List, Set

from ..pki.certificate import Certificate
from ..timeline import DateLike, as_date, iter_days
from .tls import ScanRecord, TlsScanner

__all__ = ["UniversalScanDataset"]


class UniversalScanDataset:
    """An append-only index of scan observations."""

    def __init__(self) -> None:
        self._by_fingerprint: Dict[str, Certificate] = {}
        self._first_seen: Dict[str, _dt.date] = {}
        self._last_seen: Dict[str, _dt.date] = {}
        self._days_scanned: List[_dt.date] = []

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    @property
    def days_scanned(self) -> List[_dt.date]:
        """Dates for which a sweep was ingested."""
        return list(self._days_scanned)

    def ingest(self, records: Iterable[ScanRecord]) -> int:
        """Add one day's scan records; returns new-certificate count."""
        new = 0
        day: _dt.date = _dt.date.min
        for record in records:
            day = record.date
            fp = record.certificate.fingerprint
            if fp not in self._by_fingerprint:
                self._by_fingerprint[fp] = record.certificate
                self._first_seen[fp] = record.date
                new += 1
            self._last_seen[fp] = record.date
        if day != _dt.date.min:
            self._days_scanned.append(day)
        return new

    def run_sweeps(
        self,
        scanner: TlsScanner,
        start: DateLike,
        end: DateLike,
        step: int = 1,
    ) -> None:
        """Scan every ``step`` days in [start, end] and ingest results."""
        for date in iter_days(start, end, step):
            self.ingest(scanner.scan(date))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def certificates(self) -> List[Certificate]:
        """Every certificate ever observed serving."""
        return list(self._by_fingerprint.values())

    def first_seen(self, certificate: Certificate) -> _dt.date:
        """First sweep date the certificate was observed."""
        return self._first_seen[certificate.fingerprint]

    def observed(
        self, predicate: Callable[[Certificate], bool]
    ) -> List[Certificate]:
        """Observed certificates satisfying ``predicate``."""
        return [cert for cert in self._by_fingerprint.values() if predicate(cert)]

    def chained_to_organization(self, organization: str) -> List[Certificate]:
        """Observed certificates whose chain includes ``organization``.

        The Section 4.3 query: certificates containing the Russian
        Trusted Root CA in their chain.
        """
        return self.observed(
            lambda cert: cert.chain_contains_organization(organization)
        )

    def seen_between(self, start: DateLike, end: DateLike) -> List[Certificate]:
        """Certificates first observed within [start, end]."""
        lo, hi = as_date(start), as_date(end)
        return [
            cert
            for fp, cert in self._by_fingerprint.items()
            if lo <= self._first_seen[fp] <= hi
        ]
