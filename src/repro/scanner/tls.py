"""Internet-wide TLS scanning (the Censys CUIDS equivalent).

A scan sweeps every live HTTPS endpoint and records the certificate each
one serves.  Certificates that never touch CT logs — the Russian Trusted
Root CA's — are visible *only* through this path, which is exactly why the
paper needs scan data for its Section 4.3 analysis.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..pki.certificate import Certificate
from ..rng import stable_hash
from ..timeline import DateLike, as_date

__all__ = ["ScanRecord", "TlsScanner"]

#: A provider of "who serves what": (date) -> iterable of (address, cert).
ServingView = Callable[[_dt.date], Iterable[Tuple[int, Certificate]]]


class ScanRecord:
    """One (date, address, certificate) observation."""

    __slots__ = ("date", "address", "certificate")

    def __init__(self, date: _dt.date, address: int, certificate: Certificate) -> None:
        self.date = date
        self.address = address
        self.certificate = certificate

    def __repr__(self) -> str:
        return f"ScanRecord({self.date} {self.address} {self.certificate.subject_cn})"


class TlsScanner:
    """Scans the simulated Internet once per call.

    ``response_rate`` models hosts that drop scanner traffic; whether a
    given host responds is a stable function of (address, date-week), so
    coverage is realistic but runs stay deterministic.
    """

    def __init__(self, view: ServingView, response_rate: float = 0.85) -> None:
        if not 0.0 < response_rate <= 1.0:
            raise ValueError(f"response_rate out of (0, 1]: {response_rate}")
        self._view = view
        self._response_rate = response_rate

    def _responds(self, address: int, date: _dt.date) -> bool:
        week = date.toordinal() // 7
        draw = stable_hash("tls-scan", str(address), str(week)) % 1_000_003
        return draw / 1_000_003.0 < self._response_rate

    def scan(self, date: DateLike) -> Iterator[ScanRecord]:
        """Yield one record per responding endpoint."""
        scan_date = as_date(date)
        for address, certificate in self._view(scan_date):
            if self._responds(address, scan_date):
                yield ScanRecord(scan_date, address, certificate)

    def scan_list(self, date: DateLike) -> List[ScanRecord]:
        """Materialised :meth:`scan`."""
        return list(self.scan(date))
