"""Revocation analysis (Table 2).

Tallies, per CA, the certificates securing ``.ru``/``.рф`` domains whose
validity ends after February 25, 2022, and how many of them were revoked
(CRL/OCSP state) — split into all domains vs specifically sanctioned
domains, as in the paper's Table 2.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..dns.name import DomainName
from ..errors import AnalysisError
from ..pki.ca import CertificateAuthority
from ..pki.certificate import Certificate
from ..pki.ocsp import OcspStatus
from ..timeline import REVOCATION_VALIDITY_CUTOFF

__all__ = ["IssuerRevocation", "RevocationTable", "analyze_revocations"]


class IssuerRevocation:
    """One CA's issuance/revocation tallies."""

    __slots__ = ("issuer", "issued", "revoked", "sanctioned_issued", "sanctioned_revoked")

    def __init__(
        self,
        issuer: str,
        issued: int = 0,
        revoked: int = 0,
        sanctioned_issued: int = 0,
        sanctioned_revoked: int = 0,
    ) -> None:
        self.issuer = issuer
        self.issued = issued
        self.revoked = revoked
        self.sanctioned_issued = sanctioned_issued
        self.sanctioned_revoked = sanctioned_revoked

    @property
    def revocation_rate(self) -> float:
        """Revoked share of all matching certificates (percent)."""
        return 100.0 * self.revoked / self.issued if self.issued else 0.0

    @property
    def sanctioned_revocation_rate(self) -> float:
        """Revoked share of sanctioned-domain certificates (percent)."""
        if not self.sanctioned_issued:
            return 0.0
        return 100.0 * self.sanctioned_revoked / self.sanctioned_issued

    @property
    def nonsanctioned_revocation_rate(self) -> float:
        """Revoked share among non-sanctioned certificates (percent).

        At real scale, sanctioned certificates are a negligible share of
        the population, so the paper's "all domains" rate is effectively
        this; at reproduction scale the sanctioned set is relatively
        larger, so this is the comparable number.
        """
        issued = self.issued - self.sanctioned_issued
        revoked = self.revoked - self.sanctioned_revoked
        return 100.0 * revoked / issued if issued else 0.0

    def __repr__(self) -> str:
        return (
            f"IssuerRevocation({self.issuer}: {self.revoked}/{self.issued}, "
            f"sanctioned {self.sanctioned_revoked}/{self.sanctioned_issued})"
        )


class RevocationTable:
    """Table 2: per-issuer tallies with ranking helpers."""

    def __init__(self, rows: Dict[str, IssuerRevocation]) -> None:
        self.rows = rows

    def row(self, issuer: str) -> IssuerRevocation:
        """Tallies for one issuer (zeros when absent)."""
        return self.rows.get(issuer, IssuerRevocation(issuer))

    def top_by_revocations(self, k: int = 5) -> List[IssuerRevocation]:
        """The ``k`` issuers with the most revocations (paper's selection)."""
        ranked = sorted(
            self.rows.values(), key=lambda row: (-row.revoked, row.issuer)
        )
        return ranked[:k]

    def issuers(self) -> List[str]:
        """All issuers present."""
        return sorted(self.rows)


def _secured_registrable(cert: Certificate) -> Set[str]:
    return set(cert.registered_domains())


def analyze_revocations(
    certificates: Iterable[Certificate],
    authorities: Sequence[CertificateAuthority],
    sanctioned_domains: Sequence[DomainName],
    validity_cutoff: _dt.date = REVOCATION_VALIDITY_CUTOFF,
    as_of: Optional[_dt.date] = None,
    study_tlds: Tuple[str, ...] = ("ru", "xn--p1ai"),
) -> RevocationTable:
    """Build Table 2 from certificates plus CA CRL/OCSP state.

    ``certificates`` is the Censys-indexed universe (CT-matched certs);
    revocation state is read from each CA's OCSP responder, falling back
    to the CRL when the responder does not know the certificate.
    """
    by_org: Dict[str, CertificateAuthority] = {
        ca.organization: ca for ca in authorities
    }
    sanctioned_names = {str(domain) for domain in sanctioned_domains}
    rows: Dict[str, IssuerRevocation] = {}

    check_date = as_of or (validity_cutoff + _dt.timedelta(days=120))

    for cert in certificates:
        if cert.not_after <= validity_cutoff:
            continue
        if not cert.secures_tld(study_tlds):
            continue
        org = cert.issuer.organization
        row = rows.get(org)
        if row is None:
            row = rows[org] = IssuerRevocation(org)
        authority = by_org.get(org)
        revoked = False
        if authority is not None:
            status = authority.ocsp.status(cert, check_date)
            if status is OcspStatus.REVOKED:
                revoked = True
            elif status is OcspStatus.UNKNOWN:
                revoked = authority.crl.is_revoked(cert.serial, check_date)
        row.issued += 1
        if revoked:
            row.revoked += 1
        if _secured_registrable(cert) & sanctioned_names:
            row.sanctioned_issued += 1
            if revoked:
                row.sanctioned_revoked += 1

    return RevocationTable(rows)
