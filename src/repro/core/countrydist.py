"""Per-country infrastructure distribution (Section 3.2 prose).

The paper attributes the post-invasion hosting shifts to "flight from the
US and other Western countries to a combination of Russia and the
Netherlands".  This module measures that directly: for each day, the
share of domains with at least one apex address (or name server) in each
country.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..measurement.fast import DailySnapshot

__all__ = ["CountrySharePoint", "CountryShareSeries", "collect_country_shares"]


class CountrySharePoint:
    """One day's per-country domain counts."""

    __slots__ = ("date", "total", "counts")

    def __init__(self, date: _dt.date, total: int, counts: Dict[str, int]) -> None:
        self.date = date
        self.total = total
        #: country -> domains with >= 1 measured address there.
        self.counts = counts

    def share(self, country: str) -> float:
        """Percentage of domains with presence in ``country``."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(country, 0) / self.total


class CountryShareSeries:
    """Longitudinal per-country shares."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._points: List[CountrySharePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def add(self, point: CountrySharePoint) -> None:
        """Append one day (chronological)."""
        if self._points and point.date <= self._points[-1].date:
            raise AnalysisError("country share points must be chronological")
        self._points.append(point)

    def countries_seen(self) -> List[str]:
        """Every country observed in the series."""
        seen = set()
        for point in self._points:
            seen.update(point.counts)
        return sorted(seen)

    def share_series(self, country: str) -> List[float]:
        """Percentage series for one country."""
        return [point.share(country) for point in self._points]

    def first(self) -> CountrySharePoint:
        """First point."""
        if not self._points:
            raise AnalysisError("empty country share series")
        return self._points[0]

    def last(self) -> CountrySharePoint:
        """Last point."""
        if not self._points:
            raise AnalysisError("empty country share series")
        return self._points[-1]

    def net_change(self, country: str) -> float:
        """Share change (pp) between first and last point."""
        return self.last().share(country) - self.first().share(country)


def collect_country_shares(
    snapshots: Iterable[DailySnapshot],
    kind: str = "hosting",
    subset_indices: Optional[Sequence[int]] = None,
) -> CountryShareSeries:
    """Per-country presence shares over a snapshot sweep.

    ``kind`` is ``"hosting"`` (apex addresses) or ``"ns"`` (name-server
    addresses).
    """
    if kind not in ("hosting", "ns"):
        raise AnalysisError(f"unknown country-share kind {kind!r}")
    series = CountryShareSeries(kind)
    membership_cache: Dict[int, tuple] = {}

    for snapshot in snapshots:
        if kind == "hosting":
            labels = snapshot.epoch.hosting_labels
            plan_countries = labels.countries
            plan_ids_all = snapshot.hosting_ids
        else:
            labels = snapshot.epoch.dns_labels
            plan_countries = labels.ns_countries
            plan_ids_all = snapshot.dns_ids

        cache_key = id(labels)
        cached = membership_cache.get(cache_key)
        if cached is None:
            countries = sorted(
                {c for tup in plan_countries for c in tup if c is not None}
            )
            column = {country: i for i, country in enumerate(countries)}
            matrix = np.zeros((len(plan_countries), len(countries)), dtype=bool)
            for plan_id, tup in enumerate(plan_countries):
                for country in tup:
                    if country is not None:
                        matrix[plan_id, column[country]] = True
            cached = (countries, matrix)
            membership_cache[cache_key] = cached
        countries, matrix = cached

        subset = (
            snapshot.subset(subset_indices)
            if subset_indices is not None
            else snapshot.measured
        )
        plan_counts = np.bincount(plan_ids_all[subset], minlength=matrix.shape[0])
        per_country = plan_counts @ matrix
        series.add(
            CountrySharePoint(
                snapshot.date,
                int(len(subset)),
                {
                    country: int(per_country[i])
                    for i, country in enumerate(countries)
                    if per_country[i] > 0
                },
            )
        )
    return series
