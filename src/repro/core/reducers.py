"""Picklable per-day reducers behind the longitudinal sweeps.

The five-year and conflict-window sweeps used to live as loop bodies
inside ``ExperimentContext``; the parallel sweep engine needs the same
per-day aggregation to run inside worker processes.  Each reducer maps
one :class:`~repro.measurement.fast.DailySnapshot` to a small, picklable
day record (``reduce_day``) and folds an ordered record list back into
the series the experiments consume (``merge``).  Running the identical
``reduce_day`` code serially or across processes is what keeps parallel
output bit-identical to serial output.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..measurement.fast import DailySnapshot
from .composition import CompositionSeries
from .labels import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
    snapshot_ns_tld_labels,
)
from .tlddep import TldSharePoint, TldShareSeries
from .topasn import AsnSharePoint, AsnShareSeries

__all__ = [
    "SweepSeries",
    "FullSweepDayRecord",
    "FullSweepReducer",
    "RecentDayRecord",
    "RecentWindowReducer",
    "RecentWindowSeries",
    "merge_recent_records",
]


def _composition_counts(labels: np.ndarray) -> Tuple[int, int, int]:
    return (
        int((labels == LABEL_FULL).sum()),
        int((labels == LABEL_PART).sum()),
        int((labels == LABEL_NON).sum()),
    )


class SweepSeries:
    """Every longitudinal series the five-year sweep produces."""

    def __init__(self) -> None:
        self.ns_composition = CompositionSeries("NS country composition")
        self.hosting_composition = CompositionSeries("Hosting country composition")
        self.tld_composition = CompositionSeries("NS TLD dependency")
        self.tld_shares = TldShareSeries()


class FullSweepDayRecord:
    """One day of the five-year sweep, as plain picklable counts.

    ``label_cache_hit`` is instrumentation (did this day reuse an
    already-seen epoch label table?) and is excluded from ``__eq__``:
    workers start with cold caches, so hit flags legitimately differ
    between serial and parallel runs while the counts do not.
    """

    __slots__ = (
        "date",
        "ns",
        "hosting",
        "tld",
        "measured_count",
        "tld_counts",
        "label_cache_hit",
    )

    def __init__(
        self,
        date: _dt.date,
        ns: Tuple[int, int, int],
        hosting: Tuple[int, int, int],
        tld: Tuple[int, int, int],
        measured_count: int,
        tld_counts: Dict[str, int],
        label_cache_hit: bool = False,
    ) -> None:
        self.date = date
        self.ns = ns
        self.hosting = hosting
        self.tld = tld
        self.measured_count = measured_count
        self.tld_counts = tld_counts
        self.label_cache_hit = label_cache_hit

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FullSweepDayRecord):
            return NotImplemented
        return (
            self.date,
            self.ns,
            self.hosting,
            self.tld,
            self.measured_count,
            self.tld_counts,
        ) == (
            other.date,
            other.ns,
            other.hosting,
            other.tld,
            other.measured_count,
            other.tld_counts,
        )

    def __repr__(self) -> str:
        return f"FullSweepDayRecord({self.date}, {self.measured_count} measured)"


class FullSweepReducer:
    """Per-day aggregation for Figures 1-3 and the headline stats.

    Tracks per-process reuse of the per-epoch label tables (a day whose
    epoch was already reduced is a label-cache hit); the seen-set is
    keyed by object identity, so it is dropped on pickling.
    """

    def __init__(self) -> None:
        self._seen_labels: set = set()

    def __getstate__(self):
        return {}

    def __setstate__(self, state) -> None:
        self._seen_labels = set()

    def reduce_day(self, snapshot: DailySnapshot) -> FullSweepDayRecord:
        """All full-period per-day counts for one snapshot."""
        ns_labels = snapshot_ns_geo_labels(snapshot)
        host_labels = snapshot_hosting_geo_labels(snapshot)
        tld_labels = snapshot_ns_tld_labels(snapshot)
        labels = snapshot.epoch.dns_labels
        cache_hit = id(labels) in self._seen_labels
        self._seen_labels.add(id(labels))
        plan_counts = np.bincount(
            snapshot.dns_ids[snapshot.measured],
            minlength=labels.tld_membership.shape[0],
        )
        per_tld = plan_counts @ labels.tld_membership
        return FullSweepDayRecord(
            snapshot.date,
            _composition_counts(ns_labels),
            _composition_counts(host_labels),
            _composition_counts(tld_labels),
            int(len(snapshot.measured)),
            {
                tld: int(per_tld[col])
                for col, tld in enumerate(labels.tld_names)
                if per_tld[col] > 0
            },
            cache_hit,
        )

    def merge(self, records: Sequence[FullSweepDayRecord]) -> SweepSeries:
        """Fold chronological day records into the cached series bundle."""
        series = SweepSeries()
        for record in records:
            series.ns_composition.add_counts(record.date, *record.ns)
            series.hosting_composition.add_counts(record.date, *record.hosting)
            series.tld_composition.add_counts(record.date, *record.tld)
            series.tld_shares.add(
                TldSharePoint(record.date, record.measured_count, record.tld_counts)
            )
        return series


class RecentDayRecord:
    """One day of the conflict-window sweep (Figures 4 and 5)."""

    __slots__ = (
        "date",
        "measured_count",
        "asn_counts",
        "sanctioned",
        "listed_count",
        "label_cache_hit",
    )

    def __init__(
        self,
        date: _dt.date,
        measured_count: int,
        asn_counts: Dict[int, int],
        sanctioned: Tuple[int, int, int],
        listed_count: int,
        label_cache_hit: bool,
    ) -> None:
        self.date = date
        self.measured_count = measured_count
        self.asn_counts = asn_counts
        self.sanctioned = sanctioned
        self.listed_count = listed_count
        self.label_cache_hit = label_cache_hit

    def __repr__(self) -> str:
        return f"RecentDayRecord({self.date}, {self.measured_count} measured)"


class RecentWindowSeries:
    """The merged conflict-window series bundle."""

    def __init__(
        self,
        asn_shares: AsnShareSeries,
        sanctioned_composition: CompositionSeries,
        listed_counts: List[int],
    ) -> None:
        self.asn_shares = asn_shares
        self.sanctioned_composition = sanctioned_composition
        self.listed_counts = listed_counts


class RecentWindowReducer:
    """Per-day aggregation for the tracked-ASN and sanctioned series.

    Holds the Figure 4 ASN list and the sanctioned domain indices; the
    per-epoch plan/ASN membership matrix is a per-process cache and is
    deliberately dropped on pickling (it is keyed by object identity).
    """

    def __init__(self, asns: Sequence[int], sanctioned_indices) -> None:
        self.asns = [int(asn) for asn in asns]
        self.sanctioned_indices = np.asarray(sanctioned_indices, dtype=np.int64)
        self._matrix_cache: Dict[int, np.ndarray] = {}

    def __getstate__(self):
        return {"asns": self.asns, "sanctioned_indices": self.sanctioned_indices}

    def __setstate__(self, state) -> None:
        self.asns = state["asns"]
        self.sanctioned_indices = state["sanctioned_indices"]
        self._matrix_cache = {}

    def _membership_matrix(self, labels) -> Tuple[np.ndarray, bool]:
        key = id(labels)
        matrix = self._matrix_cache.get(key)
        if matrix is not None:
            return matrix, True
        matrix = np.zeros((len(labels.asn_sets), len(self.asns)), dtype=bool)
        for plan_id, plan_asns in enumerate(labels.asn_sets):
            for col, asn in enumerate(self.asns):
                matrix[plan_id, col] = asn in plan_asns
        self._matrix_cache[key] = matrix
        return matrix, False

    def reduce_day(self, snapshot: DailySnapshot) -> RecentDayRecord:
        """Tracked-ASN counts, sanctioned composition, and list size."""
        labels = snapshot.epoch.hosting_labels
        matrix, cache_hit = self._membership_matrix(labels)
        plan_counts = np.bincount(
            snapshot.hosting_ids[snapshot.measured], minlength=matrix.shape[0]
        )
        per_asn = plan_counts @ matrix

        subset = snapshot.subset(self.sanctioned_indices)
        ns_labels = snapshot_ns_geo_labels(snapshot, subset)
        listed = len(
            snapshot.world.sanctions.domains_listed_as_of(snapshot.date)
        )
        return RecentDayRecord(
            snapshot.date,
            int(len(snapshot.measured)),
            {asn: int(per_asn[col]) for col, asn in enumerate(self.asns)},
            _composition_counts(ns_labels),
            listed,
            cache_hit,
        )

    def merge(self, records: Sequence[RecentDayRecord]) -> RecentWindowSeries:
        """Fold chronological day records into the Figure 4/5 series."""
        return merge_recent_records(self.asns, records)


def merge_recent_records(
    asns: Sequence[int], records: Sequence[RecentDayRecord]
) -> RecentWindowSeries:
    """Fold chronological conflict-window records into the series bundle.

    Module-level so record producers that never construct a reducer
    (the archive's summary kernel has no sanctioned-index array) merge
    through the identical code path.
    """
    asn_series = AsnShareSeries(asns)
    sanctioned_series = CompositionSeries("Sanctioned NS composition")
    listed_counts: List[int] = []
    for record in records:
        asn_series.add(
            AsnSharePoint(
                record.date, record.measured_count, record.asn_counts
            )
        )
        sanctioned_series.add_counts(record.date, *record.sanctioned)
        listed_counts.append(record.listed_count)
    return RecentWindowSeries(asn_series, sanctioned_series, listed_counts)
