"""Classification primitives: the paper's full/partial/non labels.

Three independent classifications per domain (Section 3):

* **hosting geography** — do all / some / none of the apex A records
  geolocate to the Russian Federation?
* **name-server geography** — same question for the authoritative
  name-server addresses;
* **name-server TLD dependency** — are all / some / none of the NS
  *names* registered under Russian-administered TLDs?

Each has a record-level form (operating on one
:class:`~repro.measurement.records.DomainMeasurement` plus a geolocation
database) and a vectorised snapshot form used by longitudinal sweeps.
The integration suite proves both forms agree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import AnalysisError
from ..geo.countries import RU
from ..geo.database import GeoDatabase
from ..measurement.fast import DailySnapshot
from ..measurement.records import DomainMeasurement
from ..registry.tld import is_russian_tld
from ..sim.plans import LABEL_FULL, LABEL_NON, LABEL_PART

__all__ = [
    "LABEL_FULL",
    "LABEL_PART",
    "LABEL_NON",
    "label_name",
    "classify_flags",
    "classify_ns_geo",
    "classify_hosting_geo",
    "classify_ns_tld",
    "snapshot_ns_geo_labels",
    "snapshot_hosting_geo_labels",
    "snapshot_ns_tld_labels",
]

_NAMES = {LABEL_FULL: "full", LABEL_PART: "part", LABEL_NON: "non"}


def label_name(label: int) -> str:
    """Human-readable label name."""
    return _NAMES[label]


def classify_flags(flags: Tuple[bool, ...]) -> int:
    """Full/part/non from per-element "is Russian" booleans."""
    if not flags:
        raise AnalysisError("cannot classify an empty composition")
    russian = sum(flags)
    if russian == len(flags):
        return LABEL_FULL
    if russian == 0:
        return LABEL_NON
    return LABEL_PART


def _country_flags(
    addresses: Tuple[int, ...], geo: GeoDatabase
) -> Tuple[bool, ...]:
    return tuple(geo.lookup(address) == RU for address in addresses)


def classify_ns_geo(measurement: DomainMeasurement, geo: GeoDatabase) -> int:
    """Name-server country composition of one measurement."""
    if not measurement.ns_addresses:
        raise AnalysisError(f"{measurement.domain}: no NS addresses measured")
    return classify_flags(_country_flags(measurement.ns_addresses, geo))


def classify_hosting_geo(measurement: DomainMeasurement, geo: GeoDatabase) -> int:
    """Apex hosting country composition of one measurement."""
    if not measurement.apex_addresses:
        raise AnalysisError(f"{measurement.domain}: no apex addresses measured")
    return classify_flags(_country_flags(measurement.apex_addresses, geo))


def classify_ns_tld(measurement: DomainMeasurement) -> int:
    """Name-server TLD-dependency composition of one measurement."""
    tlds = measurement.ns_tlds()
    if not tlds:
        raise AnalysisError(f"{measurement.domain}: no NS names measured")
    return classify_flags(tuple(is_russian_tld(tld) for tld in tlds))


# ----------------------------------------------------------------------
# Vectorised snapshot forms
# ----------------------------------------------------------------------

def snapshot_ns_geo_labels(
    snapshot: DailySnapshot, indices: Optional[np.ndarray] = None
) -> np.ndarray:
    """NS-geography label per measured domain (or a subset)."""
    subset = snapshot.measured if indices is None else indices
    return snapshot.epoch.dns_labels.geo_label[snapshot.dns_ids[subset]]


def snapshot_hosting_geo_labels(
    snapshot: DailySnapshot, indices: Optional[np.ndarray] = None
) -> np.ndarray:
    """Hosting-geography label per measured domain (or a subset)."""
    subset = snapshot.measured if indices is None else indices
    return snapshot.epoch.hosting_labels.geo_label[snapshot.hosting_ids[subset]]


def snapshot_ns_tld_labels(
    snapshot: DailySnapshot, indices: Optional[np.ndarray] = None
) -> np.ndarray:
    """NS TLD-dependency label per measured domain (or a subset)."""
    subset = snapshot.measured if indices is None else indices
    return snapshot.epoch.dns_labels.tld_label[snapshot.dns_ids[subset]]
