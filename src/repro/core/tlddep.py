"""Name-server TLD dependency analyses (Figures 2 and 3).

Two views over the TLDs that authoritative name-server *names* are
registered under:

* the full/part/non composition against Russian-administered TLDs, and
* the per-TLD share of domains delegating to at least one name server
  under that TLD (shares can sum past 100%, as in the paper).
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..measurement.fast import DailySnapshot
from .composition import CompositionSeries
from .labels import LABEL_FULL, LABEL_NON, LABEL_PART, snapshot_ns_tld_labels

__all__ = ["TldSharePoint", "TldShareSeries", "collect_tld_composition", "collect_tld_shares"]


def collect_tld_composition(
    snapshots: Iterable[DailySnapshot],
    subset_indices: Optional[Sequence[int]] = None,
    title: str = "NS TLD dependency",
) -> CompositionSeries:
    """Figure 2: full/part/non Russian NS-TLD composition over time."""
    series = CompositionSeries(title=title)
    for snapshot in snapshots:
        subset = (
            snapshot.subset(subset_indices)
            if subset_indices is not None
            else snapshot.measured
        )
        labels = snapshot_ns_tld_labels(snapshot, subset)
        series.add_counts(
            snapshot.date,
            int((labels == LABEL_FULL).sum()),
            int((labels == LABEL_PART).sum()),
            int((labels == LABEL_NON).sum()),
        )
    return series


class TldSharePoint:
    """One day's per-TLD domain shares."""

    __slots__ = ("date", "total", "counts")

    def __init__(self, date: _dt.date, total: int, counts: Dict[str, int]) -> None:
        self.date = date
        self.total = total
        #: TLD -> number of domains with >= 1 NS name under it.
        self.counts = counts

    def share(self, tld: str) -> float:
        """Percentage of domains using ``tld`` for >= 1 name server."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(tld, 0) / self.total


class TldShareSeries:
    """Longitudinal per-TLD shares."""

    def __init__(self) -> None:
        self._points: List[TldSharePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def add(self, point: TldSharePoint) -> None:
        """Append one day."""
        if self._points and point.date <= self._points[-1].date:
            raise AnalysisError("TLD share points must be chronological")
        self._points.append(point)

    def dates(self) -> List[_dt.date]:
        """Series dates."""
        return [point.date for point in self._points]

    def tlds_seen(self) -> List[str]:
        """Every TLD observed anywhere in the series."""
        seen = set()
        for point in self._points:
            seen.update(point.counts)
        return sorted(seen)

    def share_series(self, tld: str) -> List[float]:
        """Percentage series for one TLD."""
        return [point.share(tld) for point in self._points]

    def top_tlds(self, k: int = 5, at: Optional[_dt.date] = None) -> List[str]:
        """The ``k`` TLDs with the highest share (on the last day or ``at``)."""
        if not self._points:
            raise AnalysisError("empty TLD share series")
        point = self._points[-1]
        if at is not None:
            point = min(self._points, key=lambda p: abs((p.date - at).days))
        ranked = sorted(
            point.counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [tld for tld, _ in ranked[:k]]

    def first(self) -> TldSharePoint:
        """First point."""
        if not self._points:
            raise AnalysisError("empty TLD share series")
        return self._points[0]

    def last(self) -> TldSharePoint:
        """Last point."""
        if not self._points:
            raise AnalysisError("empty TLD share series")
        return self._points[-1]


def collect_tld_shares(
    snapshots: Iterable[DailySnapshot],
    subset_indices: Optional[Sequence[int]] = None,
) -> TldShareSeries:
    """Figure 3's raw material: per-TLD share of domains, per day."""
    series = TldShareSeries()
    for snapshot in snapshots:
        subset = (
            snapshot.subset(subset_indices)
            if subset_indices is not None
            else snapshot.measured
        )
        labels = snapshot.epoch.dns_labels
        plan_counts = np.bincount(
            snapshot.dns_ids[subset], minlength=labels.tld_membership.shape[0]
        )
        per_tld = plan_counts @ labels.tld_membership  # domains per TLD
        counts = {
            tld: int(per_tld[column])
            for column, tld in enumerate(labels.tld_names)
            if per_tld[column] > 0
        }
        series.add(TldSharePoint(snapshot.date, int(len(subset)), counts))
    return series
