"""Headline statistics: the prose numbers of Sections 3 and 6.

Assembles, from already-computed series, the quotable figures the paper
reports in text: the stable ~71% fully-Russian hosting, the 67.0% -> 73.9%
fully-Russian name service, the net TLD-dependency changes, and the size
of the Netnod transition.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Optional

from ..errors import AnalysisError
from ..timeline import CONFLICT_START, STUDY_END, STUDY_START
from .composition import CompositionSeries
from .tlddep import TldShareSeries

__all__ = ["HeadlineStats", "compute_headline_stats"]


class HeadlineStats:
    """The paper's quotable numbers, as measured from the reproduction."""

    def __init__(self) -> None:
        self.hosting_full_start: float = 0.0
        self.hosting_part_start: float = 0.0
        self.hosting_non_start: float = 0.0
        self.ns_full_start: float = 0.0
        self.ns_full_end: float = 0.0
        self.ns_full_change: float = 0.0
        self.tld_full_change: float = 0.0
        self.tld_part_change: float = 0.0
        self.top_tld_start: Dict[str, float] = {}
        self.top_tld_end: Dict[str, float] = {}
        self.domains_start: int = 0
        self.domains_end: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (used by renderers and EXPERIMENTS.md)."""
        return {
            "hosting_full_start": round(self.hosting_full_start, 2),
            "hosting_part_start": round(self.hosting_part_start, 2),
            "hosting_non_start": round(self.hosting_non_start, 2),
            "ns_full_start": round(self.ns_full_start, 2),
            "ns_full_end": round(self.ns_full_end, 2),
            "ns_full_change": round(self.ns_full_change, 2),
            "tld_full_change": round(self.tld_full_change, 2),
            "tld_part_change": round(self.tld_part_change, 2),
            "top_tld_start": {k: round(v, 2) for k, v in self.top_tld_start.items()},
            "top_tld_end": {k: round(v, 2) for k, v in self.top_tld_end.items()},
            "domains_start": self.domains_start,
            "domains_end": self.domains_end,
        }


def compute_headline_stats(
    hosting_series: CompositionSeries,
    ns_series: CompositionSeries,
    tld_series: CompositionSeries,
    tld_shares: TldShareSeries,
    start: _dt.date = STUDY_START,
    end: _dt.date = STUDY_END,
) -> HeadlineStats:
    """Assemble the headline numbers from the four core series."""
    if not len(hosting_series) or not len(ns_series):
        raise AnalysisError("headline stats need non-empty series")

    stats = HeadlineStats()
    hosting_first = hosting_series.nearest(start)
    stats.hosting_full_start = hosting_first.share("full")
    stats.hosting_part_start = hosting_first.share("part")
    stats.hosting_non_start = hosting_first.share("non")

    ns_first = ns_series.nearest(start)
    ns_last = ns_series.nearest(end)
    stats.ns_full_start = ns_first.share("full")
    stats.ns_full_end = ns_last.share("full")
    stats.ns_full_change = stats.ns_full_end - stats.ns_full_start

    stats.tld_full_change = tld_series.nearest(end).share("full") - tld_series.nearest(
        start
    ).share("full")
    stats.tld_part_change = tld_series.nearest(end).share("part") - tld_series.nearest(
        start
    ).share("part")

    first_shares = tld_shares.first()
    last_shares = tld_shares.last()
    for tld in tld_shares.top_tlds(5):
        stats.top_tld_start[tld] = first_shares.share(tld)
        stats.top_tld_end[tld] = last_shares.share(tld)

    stats.domains_start = ns_first.total
    stats.domains_end = ns_last.total
    return stats
