"""Russian Trusted Root CA analysis (Section 4.3).

The state CA never logs to CT, so everything here works from active-scan
observations: certificates whose chain contains the Russian Trusted Root
CA organization, the TLD split of the domains they secure, and overlap
with the sanctioned-domain list.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Sequence, Set

from ..dns.name import DomainName
from ..pki.certificate import Certificate
from ..scanner.cuids import UniversalScanDataset

__all__ = ["TrustedCaReport", "analyze_trusted_ca"]


class TrustedCaReport:
    """What the scans reveal about the state CA's initial deployment."""

    def __init__(
        self,
        certificates: List[Certificate],
        ru_domains: Set[str],
        rf_domains: Set[str],
        other_domains: Set[str],
        sanctioned_secured: Set[str],
        sanctioned_total: int,
        comparison_issued_elsewhere: int,
    ) -> None:
        #: Distinct scan-observed certificates chaining to the state CA.
        self.certificates = certificates
        #: Registrable ``.ru`` domains secured.
        self.ru_domains = ru_domains
        #: Registrable ``.рф`` domains secured.
        self.rf_domains = rf_domains
        #: Secured domains under any other TLD (the "long tail").
        self.other_domains = other_domains
        #: Sanctioned domains secured by the state CA.
        self.sanctioned_secured = sanctioned_secured
        #: Size of the sanctioned list (denominator for coverage).
        self.sanctioned_total = sanctioned_total
        #: Context: certificates all *other* CAs issued in the same window.
        self.comparison_issued_elsewhere = comparison_issued_elsewhere

    @property
    def certificate_count(self) -> int:
        """Distinct state-CA certificates observed serving."""
        return len(self.certificates)

    @property
    def sanctioned_coverage(self) -> float:
        """Share of the sanctioned list secured by the state CA (percent)."""
        if not self.sanctioned_total:
            return 0.0
        return 100.0 * len(self.sanctioned_secured) / self.sanctioned_total

    def issuance_window(self) -> (tuple):
        """(first, last) not_before among observed certificates."""
        if not self.certificates:
            return (None, None)
        dates = [cert.not_before for cert in self.certificates]
        return (min(dates), max(dates))

    def __repr__(self) -> str:
        return (
            f"TrustedCaReport({self.certificate_count} certs, "
            f"{len(self.ru_domains)} .ru / {len(self.rf_domains)} .рф)"
        )


def analyze_trusted_ca(
    scans: UniversalScanDataset,
    russian_ca_organization: str,
    sanctioned_domains: Sequence[DomainName],
    comparison_issued_elsewhere: int = 0,
) -> TrustedCaReport:
    """Build the Section 4.3 report from accumulated scan data."""
    observed = scans.chained_to_organization(russian_ca_organization)
    ru: Set[str] = set()
    rf: Set[str] = set()
    other: Set[str] = set()
    for cert in observed:
        for registrable in cert.registered_domains():
            tld = registrable.rsplit(".", 1)[-1]
            if tld == "ru":
                ru.add(registrable)
            elif tld == "xn--p1ai":
                rf.add(registrable)
            else:
                other.add(registrable)

    sanctioned_names = {str(domain) for domain in sanctioned_domains}
    secured = (ru | rf | other) & sanctioned_names

    return TrustedCaReport(
        certificates=observed,
        ru_domains=ru,
        rf_domains=rf,
        other_domains=other,
        sanctioned_secured=secured,
        sanctioned_total=len(sanctioned_names),
        comparison_issued_elsewhere=comparison_issued_elsewhere,
    )
