"""Core analysis: the paper's measurement pipeline.

Everything here consumes measurements (snapshots, CT monitor output,
scan datasets) and produces the series, tables, and reports behind the
paper's figures, tables, and prose claims.
"""

from .composition import CompositionPoint, CompositionSeries, collect_composition
from .concentration import ConcentrationReport, analyze_market, concentration_ratio, hhi
from .countrydist import CountrySharePoint, CountryShareSeries, collect_country_shares
from .issuance import (
    IssuanceTimeline,
    compare_issuance_windows,
    PhaseIssuance,
    daily_issuance_average,
    issuance_by_phase,
    issuance_timelines,
    top_issuers_table,
)
from .labels import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    classify_flags,
    classify_hosting_geo,
    classify_ns_geo,
    classify_ns_tld,
    label_name,
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
    snapshot_ns_tld_labels,
)
from .movement import MovementReport, analyze_movement, transition_matrix
from .reducers import (
    FullSweepDayRecord,
    FullSweepReducer,
    RecentDayRecord,
    RecentWindowReducer,
    RecentWindowSeries,
    SweepSeries,
)
from .revocation import IssuerRevocation, RevocationTable, analyze_revocations
from .summary import HeadlineStats, compute_headline_stats
from .tlddep import (
    TldSharePoint,
    TldShareSeries,
    collect_tld_composition,
    collect_tld_shares,
)
from .topasn import AsnSharePoint, AsnShareSeries, asn_members, collect_asn_shares
from .trustedca import TrustedCaReport, analyze_trusted_ca

__all__ = [
    "CompositionPoint",
    "CompositionSeries",
    "collect_composition",
    "ConcentrationReport",
    "analyze_market",
    "concentration_ratio",
    "hhi",
    "CountrySharePoint",
    "CountryShareSeries",
    "collect_country_shares",
    "compare_issuance_windows",
    "IssuanceTimeline",
    "PhaseIssuance",
    "daily_issuance_average",
    "issuance_by_phase",
    "issuance_timelines",
    "top_issuers_table",
    "LABEL_FULL",
    "LABEL_NON",
    "LABEL_PART",
    "classify_flags",
    "classify_hosting_geo",
    "classify_ns_geo",
    "classify_ns_tld",
    "label_name",
    "snapshot_hosting_geo_labels",
    "snapshot_ns_geo_labels",
    "snapshot_ns_tld_labels",
    "MovementReport",
    "analyze_movement",
    "transition_matrix",
    "FullSweepDayRecord",
    "FullSweepReducer",
    "RecentDayRecord",
    "RecentWindowReducer",
    "RecentWindowSeries",
    "SweepSeries",
    "IssuerRevocation",
    "RevocationTable",
    "analyze_revocations",
    "HeadlineStats",
    "compute_headline_stats",
    "TldSharePoint",
    "TldShareSeries",
    "collect_tld_composition",
    "collect_tld_shares",
    "AsnSharePoint",
    "AsnShareSeries",
    "asn_members",
    "collect_asn_shares",
    "TrustedCaReport",
    "analyze_trusted_ca",
]
