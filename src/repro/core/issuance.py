"""Certificate issuance analyses (Table 1 and Figure 8).

Works from a CT monitor's matched entries — certificates whose CN or SAN
falls under ``.ru``/``.рф`` — grouped by Issuer Organization.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence, Tuple

from ..ctlog.monitor import CtMonitor
from ..errors import AnalysisError
from ..timeline import (
    CERT_WINDOW_END,
    CERT_WINDOW_START,
    Phase,
    phase_of,
)

__all__ = [
    "PhaseIssuance",
    "issuance_by_phase",
    "top_issuers_table",
    "daily_issuance_average",
    "IssuanceTimeline",
    "issuance_timelines",
]


class PhaseIssuance:
    """Per-issuer certificate counts within one paper phase."""

    def __init__(self, phase: Phase, counts: Dict[str, int]) -> None:
        self.phase = phase
        self.counts = counts

    @property
    def total(self) -> int:
        """All certificates in the phase."""
        return sum(self.counts.values())

    def share(self, issuer: str) -> float:
        """Issuer's percentage of phase issuance."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(issuer, 0) / self.total

    def top(self, k: int = 3) -> List[Tuple[str, int]]:
        """The ``k`` largest issuers (count-descending)."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def other_than(self, issuers: Sequence[str]) -> int:
        """Combined count of every issuer not listed ("Other CAs")."""
        named = set(issuers)
        return sum(
            count for issuer, count in self.counts.items() if issuer not in named
        )


def issuance_by_phase(
    monitor: CtMonitor,
    window_start: _dt.date = CERT_WINDOW_START,
    window_end: _dt.date = CERT_WINDOW_END,
) -> Dict[Phase, PhaseIssuance]:
    """Group matched CT entries into the paper's three phases."""
    counts: Dict[Phase, Dict[str, int]] = {phase: {} for phase in Phase}
    for entry in monitor.matched_entries():
        date = entry.timestamp
        if date < window_start or date > window_end:
            continue
        phase = phase_of(date)
        org = entry.certificate.issuer.organization
        counts[phase][org] = counts[phase].get(org, 0) + 1
    return {phase: PhaseIssuance(phase, per) for phase, per in counts.items()}


def top_issuers_table(
    phases: Dict[Phase, PhaseIssuance], k: int = 3
) -> Dict[Phase, List[Tuple[str, int, float]]]:
    """Table 1: per phase, the top-k issuers plus an "Other CAs" row."""
    table: Dict[Phase, List[Tuple[str, int, float]]] = {}
    for phase, issuance in phases.items():
        rows: List[Tuple[str, int, float]] = []
        top = issuance.top(k)
        for issuer, count in top:
            rows.append((issuer, count, issuance.share(issuer)))
        other = issuance.other_than([issuer for issuer, _ in top])
        other_share = 100.0 * other / issuance.total if issuance.total else 0.0
        rows.append(("Other CAs", other, other_share))
        table[phase] = rows
    return table


def daily_issuance_average(
    phases: Dict[Phase, PhaseIssuance],
    window_start: _dt.date = CERT_WINDOW_START,
    window_end: _dt.date = CERT_WINDOW_END,
    conflict_start: Optional[_dt.date] = None,
    sanctions_effective: Optional[_dt.date] = None,
) -> Dict[Phase, float]:
    """Average certificates per day in each phase (Section 4 headline)."""
    from ..timeline import CONFLICT_START, SANCTIONS_EFFECTIVE

    conflict = conflict_start or CONFLICT_START
    sanctions = sanctions_effective or SANCTIONS_EFFECTIVE
    lengths = {
        Phase.PRE_CONFLICT: (conflict - window_start).days,
        Phase.PRE_SANCTIONS: (sanctions - conflict).days + 1,
        Phase.POST_SANCTIONS: (window_end - sanctions).days,
    }
    averages: Dict[Phase, float] = {}
    for phase, issuance in phases.items():
        days = max(lengths.get(phase, 1), 1)
        averages[phase] = issuance.total / days
    return averages


class IssuanceTimeline:
    """Figure 8: one issuer's active-issuance days."""

    def __init__(self, issuer: str, daily_counts: Dict[_dt.date, int]) -> None:
        self.issuer = issuer
        self.daily_counts = daily_counts

    @property
    def total(self) -> int:
        """All certificates in the window."""
        return sum(self.daily_counts.values())

    def active_days(self) -> List[_dt.date]:
        """Days with at least one issued certificate (the green dots)."""
        return sorted(self.daily_counts)

    def last_active_day(self) -> Optional[_dt.date]:
        """The final issuance day, or None when never active."""
        return max(self.daily_counts) if self.daily_counts else None

    def issued_on(self, date: _dt.date) -> bool:
        """True when the issuer produced >= 1 certificate that day."""
        return date in self.daily_counts

    def stopped_before(self, date: _dt.date) -> bool:
        """True when the issuer's last activity precedes ``date``."""
        last = self.last_active_day()
        return last is not None and last < date

    def gap_after(self, date: _dt.date, window_days: int = 14) -> bool:
        """True when no issuance occurred within ``window_days`` after ``date``."""
        horizon = date + _dt.timedelta(days=window_days)
        return not any(date <= day <= horizon for day in self.daily_counts)

    def active_day_share(self, start: _dt.date, end: _dt.date) -> float:
        """Fraction of days in [start, end] with >= 1 certificate.

        Distinguishes *sustained* issuance from the isolated brand-CN
        "leakage" dots the paper calls out in Figure 8.
        """
        total_days = (end - start).days + 1
        if total_days <= 0:
            return 0.0
        active = sum(1 for day in self.daily_counts if start <= day <= end)
        return active / total_days


def compare_issuance_windows(
    monitor: CtMonitor,
    window_a: Tuple[_dt.date, _dt.date],
    window_b: Tuple[_dt.date, _dt.date],
) -> Dict[str, Tuple[float, float]]:
    """Per-issuer share-of-issuance in two windows: {org: (share_a, share_b)}.

    Used for the paper's footnote-7 claim: OFAC's General License 25
    (April 22, 2022) produced *no clear change* in issuance behaviour —
    i.e. the two windows around it should look alike.
    """
    def shares(window: Tuple[_dt.date, _dt.date]) -> Dict[str, float]:
        counts: Dict[str, int] = {}
        for entry in monitor.matched_entries():
            if window[0] <= entry.timestamp <= window[1]:
                org = entry.certificate.issuer.organization
                counts[org] = counts.get(org, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {org: 100.0 * count / total for org, count in counts.items()}

    shares_a = shares(window_a)
    shares_b = shares(window_b)
    result: Dict[str, Tuple[float, float]] = {}
    for org in sorted(set(shares_a) | set(shares_b)):
        result[org] = (shares_a.get(org, 0.0), shares_b.get(org, 0.0))
    return result


def issuance_timelines(
    monitor: CtMonitor,
    window_start: _dt.date = CERT_WINDOW_START,
    window_end: _dt.date = CERT_WINDOW_END,
    top_k: int = 10,
) -> List[IssuanceTimeline]:
    """Per-issuer daily timelines for the ``top_k`` issuers by volume."""
    if top_k < 1:
        raise AnalysisError(f"top_k must be positive: {top_k}")
    matrix = monitor.daily_issuer_matrix()
    windowed: Dict[str, Dict[_dt.date, int]] = {}
    for issuer, per_day in matrix.items():
        kept = {
            date: count
            for date, count in per_day.items()
            if window_start <= date <= window_end
        }
        if kept:
            windowed[issuer] = kept
    ranked = sorted(
        windowed.items(), key=lambda kv: (-sum(kv[1].values()), kv[0])
    )
    return [IssuanceTimeline(issuer, per_day) for issuer, per_day in ranked[:top_k]]
