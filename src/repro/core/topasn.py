"""Per-hosting-network domain shares (Figure 4).

For each tracked ASN, the share of Russian-Federation domains whose apex
resolves into that network, day by day.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..measurement.fast import DailySnapshot

__all__ = ["AsnSharePoint", "AsnShareSeries", "collect_asn_shares", "asn_members"]


def asn_members(snapshot: DailySnapshot, asn: int) -> np.ndarray:
    """Measured domain indices whose apex resolves into ``asn``."""
    labels = snapshot.epoch.hosting_labels
    plan_ids = snapshot.hosting_ids[snapshot.measured]
    in_asn_plan = np.asarray(
        [asn in asns for asns in labels.asn_sets], dtype=bool
    )
    return snapshot.measured[in_asn_plan[plan_ids]]


class AsnSharePoint:
    """One day's per-ASN membership counts."""

    __slots__ = ("date", "total", "counts")

    def __init__(self, date: _dt.date, total: int, counts: Dict[int, int]) -> None:
        self.date = date
        self.total = total
        self.counts = counts

    def share(self, asn: int) -> float:
        """Percentage of domains hosted in ``asn``."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(asn, 0) / self.total


class AsnShareSeries:
    """Longitudinal per-ASN shares for a fixed ASN set."""

    def __init__(self, asns: Sequence[int]) -> None:
        self.asns = list(asns)
        self._points: List[AsnSharePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def add(self, point: AsnSharePoint) -> None:
        """Append one day."""
        if self._points and point.date <= self._points[-1].date:
            raise AnalysisError("ASN share points must be chronological")
        self._points.append(point)

    def dates(self) -> List[_dt.date]:
        """Series dates."""
        return [point.date for point in self._points]

    def share_series(self, asn: int) -> List[float]:
        """Percentage series for one ASN."""
        return [point.share(asn) for point in self._points]

    def count_series(self, asn: int) -> List[int]:
        """Absolute count series for one ASN."""
        return [point.counts.get(asn, 0) for point in self._points]

    def first(self) -> AsnSharePoint:
        """First point."""
        if not self._points:
            raise AnalysisError("empty ASN share series")
        return self._points[0]

    def last(self) -> AsnSharePoint:
        """Last point."""
        if not self._points:
            raise AnalysisError("empty ASN share series")
        return self._points[-1]


def collect_asn_shares(
    snapshots: Iterable[DailySnapshot],
    asns: Sequence[int],
) -> AsnShareSeries:
    """Figure 4's series: daily domain share per tracked hosting ASN."""
    series = AsnShareSeries(asns)
    asn_list = list(asns)
    membership_cache: Dict[int, np.ndarray] = {}

    for snapshot in snapshots:
        labels = snapshot.epoch.hosting_labels
        cache_key = id(labels)
        matrix = membership_cache.get(cache_key)
        if matrix is None:
            matrix = np.zeros((len(labels.asn_sets), len(asn_list)), dtype=bool)
            for plan_id, plan_asns in enumerate(labels.asn_sets):
                for column, asn in enumerate(asn_list):
                    matrix[plan_id, column] = asn in plan_asns
            membership_cache[cache_key] = matrix
        plan_counts = np.bincount(
            snapshot.hosting_ids[snapshot.measured], minlength=matrix.shape[0]
        )
        per_asn = plan_counts @ matrix
        series.add(
            AsnSharePoint(
                snapshot.date,
                int(len(snapshot.measured)),
                {asn: int(per_asn[col]) for col, asn in enumerate(asn_list)},
            )
        )
    return series
