"""Provider movement analysis (Figures 6 and 7, Section 3.4).

Compares the set of domains resolving into one provider's ASN at two
dates and reports: how many remained, how many relocated away (and to
which networks), how many arrived from elsewhere, and — via whois, as the
paper does with Cisco's Whois Domain API — how many of the arrivals are
*newly registered* rather than relocated.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import AnalysisError
from ..measurement.fast import DailySnapshot, FastCollector
from ..registry.whois import WhoisService
from .topasn import asn_members

__all__ = ["MovementReport", "analyze_movement"]


class MovementReport:
    """Outcome of a two-date movement comparison for one ASN."""

    def __init__(
        self,
        asn: int,
        date_from: _dt.date,
        date_to: _dt.date,
        original: int,
        remained: int,
        relocated: int,
        expired: int,
        inflow_relocated: int,
        inflow_new: int,
        relocation_destinations: Dict[int, int],
        inflow_sources: Dict[int, int],
        inflow_new_names: Optional[List] = None,
    ) -> None:
        self.asn = asn
        self.date_from = date_from
        self.date_to = date_to
        #: Domains in the ASN on ``date_from``.
        self.original = original
        #: Original domains still in the ASN on ``date_to``.
        self.remained = remained
        #: Original domains now resolving into a different ASN.
        self.relocated = relocated
        #: Original domains no longer registered at all.
        self.expired = expired
        #: Pre-existing domains that moved *into* the ASN.
        self.inflow_relocated = inflow_relocated
        #: Domains first registered after ``date_from`` that appeared here.
        self.inflow_new = inflow_new
        #: Destination ASN -> count, for the relocated set.
        self.relocation_destinations = relocation_destinations
        #: Source ASN -> count, for the relocated inflow.
        self.inflow_sources = inflow_sources
        #: Names of the newly registered arrivals (the whois follow-up of
        #: the paper's footnote 10).
        self.inflow_new_names = list(inflow_new_names or [])

    @property
    def remained_share(self) -> float:
        """Fraction of the original set that stayed (0..1)."""
        return self.remained / self.original if self.original else 0.0

    @property
    def relocated_share(self) -> float:
        """Fraction of the original set that relocated (0..1)."""
        return self.relocated / self.original if self.original else 0.0

    @property
    def inflow_total(self) -> int:
        """All arrivals (relocated + newly registered)."""
        return self.inflow_relocated + self.inflow_new

    def top_destinations(self, k: int = 5) -> List[Tuple[int, int]]:
        """The ``k`` most common relocation destination ASNs."""
        ranked = sorted(
            self.relocation_destinations.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:k]

    def destination_share(self, asn: int) -> float:
        """Fraction of the relocated set that landed in ``asn`` (0..1)."""
        if self.relocated == 0:
            return 0.0
        return self.relocation_destinations.get(asn, 0) / self.relocated

    def __repr__(self) -> str:
        return (
            f"MovementReport(AS{self.asn} {self.date_from}->{self.date_to} "
            f"orig={self.original} remained={self.remained} "
            f"relocated={self.relocated} in={self.inflow_total})"
        )


def _primary_asn_of(snapshot: DailySnapshot, index: int) -> int:
    labels = snapshot.epoch.hosting_labels
    return int(labels.primary_asn[snapshot.hosting_ids[index]])


def transition_matrix(
    collector: FastCollector,
    date_from: _dt.date,
    date_to: _dt.date,
    min_count: int = 1,
) -> Dict[Tuple[int, int], int]:
    """Full ASN-to-ASN movement between two dates.

    Counts every domain active on both dates by its (primary ASN at
    ``date_from``, primary ASN at ``date_to``); the generalisation behind
    Figures 6 and 7's per-provider views.  Entries below ``min_count``
    are dropped.
    """
    if date_to <= date_from:
        raise AnalysisError(f"movement window is empty: {date_from} -> {date_to}")
    snap_from = collector.collect(date_from)
    snap_to = collector.collect(date_to)
    import numpy as np

    both = np.intersect1d(snap_from.measured, snap_to.measured)
    from_labels = snap_from.epoch.hosting_labels
    to_labels = snap_to.epoch.hosting_labels
    from_asn = from_labels.primary_asn[snap_from.hosting_ids[both]]
    to_asn = to_labels.primary_asn[snap_to.hosting_ids[both]]

    matrix: Dict[Tuple[int, int], int] = {}
    for source, destination in zip(from_asn, to_asn):
        key = (int(source), int(destination))
        matrix[key] = matrix.get(key, 0) + 1
    return {
        key: count for key, count in matrix.items() if count >= min_count
    }


def analyze_movement(
    collector: FastCollector,
    asn: int,
    date_from: _dt.date,
    date_to: _dt.date,
    whois: Optional[WhoisService] = None,
) -> MovementReport:
    """Compare one ASN's customer set between two dates."""
    if date_to <= date_from:
        raise AnalysisError(f"movement window is empty: {date_from} -> {date_to}")
    snap_from = collector.collect(date_from)
    snap_to = collector.collect(date_to)
    whois = whois or collector.world.whois

    before: Set[int] = set(int(i) for i in asn_members(snap_from, asn))
    after: Set[int] = set(int(i) for i in asn_members(snap_to, asn))
    active_to: Set[int] = set(int(i) for i in snap_to.measured)

    remained = before & after
    gone = before - after
    expired = {index for index in gone if index not in active_to}
    relocated = gone - expired

    destinations: Dict[int, int] = {}
    for index in relocated:
        dest = _primary_asn_of(snap_to, index)
        destinations[dest] = destinations.get(dest, 0) + 1

    arrivals = after - before
    inflow_new = 0
    inflow_relocated = 0
    inflow_new_names: List = []
    sources: Dict[int, int] = {}
    population = collector.world.population
    for index in arrivals:
        name = population.record(index).name
        if whois.is_newly_registered(name, date_from):
            inflow_new += 1
            inflow_new_names.append(name)
        else:
            inflow_relocated += 1
            source = _primary_asn_of(snap_from, index)
            sources[source] = sources.get(source, 0) + 1

    return MovementReport(
        asn,
        date_from,
        date_to,
        original=len(before),
        remained=len(remained),
        relocated=len(relocated),
        expired=len(expired),
        inflow_relocated=inflow_relocated,
        inflow_new=inflow_new,
        relocation_destinations=destinations,
        inflow_sources=sources,
        inflow_new_names=sorted(inflow_new_names),
    )
