"""Market-concentration metrics (extension of the paper's Section 6).

The paper's discussion flags the "near-complete control Let's Encrypt
holds in securing .ru and .рф sites" as Russia's one area of significant
exposure, and related work (Zembruzki et al., Liu et al.) frames Russian
hosting as unusually centralised.  This module quantifies both with
standard concentration measures:

* the Herfindahl–Hirschman Index (HHI, 0..1; >0.25 is "highly
  concentrated" under the usual antitrust convention),
* concentration ratios CR-k (combined share of the top k firms),
* the effective number of competitors (1/HHI).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..errors import AnalysisError

__all__ = ["ConcentrationReport", "hhi", "concentration_ratio", "analyze_market"]


def _shares(counts: Mapping[str, int]) -> Dict[str, float]:
    total = sum(counts.values())
    if total <= 0:
        raise AnalysisError("cannot measure concentration of an empty market")
    return {name: value / total for name, value in counts.items()}


def hhi(counts: Mapping[str, int]) -> float:
    """Herfindahl–Hirschman Index of a market, in [1/n, 1]."""
    return sum(share**2 for share in _shares(counts).values())


def concentration_ratio(counts: Mapping[str, int], k: int) -> float:
    """Combined market share of the ``k`` largest participants (0..1)."""
    if k < 1:
        raise AnalysisError(f"k must be positive: {k}")
    ranked = sorted(_shares(counts).values(), reverse=True)
    return sum(ranked[:k])


class ConcentrationReport:
    """Concentration summary of one market snapshot."""

    __slots__ = ("market", "hhi", "cr1", "cr3", "leader", "participants")

    def __init__(self, market: str, counts: Mapping[str, int]) -> None:
        self.market = market
        self.hhi = hhi(counts)
        self.cr1 = concentration_ratio(counts, 1)
        self.cr3 = concentration_ratio(counts, 3)
        shares = _shares(counts)
        self.leader = max(shares, key=lambda name: shares[name])
        self.participants = sum(1 for value in counts.values() if value > 0)

    @property
    def effective_competitors(self) -> float:
        """1/HHI: the number of equal-sized firms with the same HHI."""
        return 1.0 / self.hhi

    @property
    def highly_concentrated(self) -> bool:
        """True above the conventional 0.25 HHI threshold."""
        return self.hhi > 0.25

    def __repr__(self) -> str:
        return (
            f"ConcentrationReport({self.market}: HHI={self.hhi:.3f}, "
            f"CR1={self.cr1:.2f}, leader={self.leader!r})"
        )


def analyze_market(market: str, counts: Mapping[str, int]) -> ConcentrationReport:
    """Build a report for one named market."""
    return ConcentrationReport(market, counts)
