"""Longitudinal country-composition series (Figures 1 and 5).

A :class:`CompositionSeries` accumulates per-day full/part/non counts and
the daily domain total (the black curve in the paper's figures), for
either the whole population or a subset (the sanctioned domains).
"""

from __future__ import annotations

import bisect
import datetime as _dt
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..measurement.fast import DailySnapshot
from .labels import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
)

__all__ = ["CompositionPoint", "CompositionSeries", "collect_composition"]


class CompositionPoint:
    """One day's composition."""

    __slots__ = ("date", "full", "part", "non")

    def __init__(self, date: _dt.date, full: int, part: int, non: int) -> None:
        self.date = date
        self.full = full
        self.part = part
        self.non = non

    @property
    def total(self) -> int:
        """Number of classified domains."""
        return self.full + self.part + self.non

    def share(self, which: str) -> float:
        """Percentage [0, 100] of one class (``full``/``part``/``non``)."""
        if self.total == 0:
            return 0.0
        return 100.0 * getattr(self, which) / self.total

    def __repr__(self) -> str:
        return (
            f"CompositionPoint({self.date} full={self.full} "
            f"part={self.part} non={self.non})"
        )


class CompositionSeries:
    """An append-only series of :class:`CompositionPoint`."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._points: List[CompositionPoint] = []
        # Sorted date index backing O(log n) at()/nearest(); chronological
        # appends keep it in lockstep with _points.
        self._dates: List[_dt.date] = []

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def add(self, point: CompositionPoint) -> None:
        """Append one day (dates must be strictly increasing)."""
        if self._points and point.date <= self._points[-1].date:
            raise AnalysisError(
                f"composition points must be chronological "
                f"({point.date} after {self._points[-1].date})"
            )
        self._points.append(point)
        self._dates.append(point.date)

    def add_counts(self, date: _dt.date, full: int, part: int, non: int) -> None:
        """Append one day from raw counts."""
        self.add(CompositionPoint(date, full, part, non))

    def points(self) -> List[CompositionPoint]:
        """All points, chronological."""
        return list(self._points)

    def dates(self) -> List[_dt.date]:
        """Series dates."""
        return list(self._dates)

    def shares(self, which: str) -> List[float]:
        """Percentage series for one class."""
        return [point.share(which) for point in self._points]

    def totals(self) -> List[int]:
        """The black curve: classified-domain totals."""
        return [point.total for point in self._points]

    def at(self, date: _dt.date) -> CompositionPoint:
        """The point for ``date`` (exact match, binary search)."""
        pos = bisect.bisect_left(self._dates, date)
        if pos < len(self._dates) and self._dates[pos] == date:
            return self._points[pos]
        raise AnalysisError(f"no composition point for {date}")

    def nearest(self, date: _dt.date) -> CompositionPoint:
        """The point closest in time to ``date`` (earlier wins ties)."""
        if not self._points:
            raise AnalysisError("empty composition series")
        pos = bisect.bisect_left(self._dates, date)
        if pos == 0:
            return self._points[0]
        if pos == len(self._points):
            return self._points[-1]
        before, after = self._points[pos - 1], self._points[pos]
        if abs((after.date - date).days) < abs((before.date - date).days):
            return after
        return before

    def first(self) -> CompositionPoint:
        """First point."""
        if not self._points:
            raise AnalysisError("empty composition series")
        return self._points[0]

    def last(self) -> CompositionPoint:
        """Last point."""
        if not self._points:
            raise AnalysisError("empty composition series")
        return self._points[-1]

    def net_change(self, which: str) -> float:
        """Percentage-point change of a class between first and last point."""
        return self.last().share(which) - self.first().share(which)


def _labels_for(snapshot: DailySnapshot, kind: str, subset) -> np.ndarray:
    if kind == "ns":
        return snapshot_ns_geo_labels(snapshot, subset)
    if kind == "hosting":
        return snapshot_hosting_geo_labels(snapshot, subset)
    raise AnalysisError(f"unknown composition kind {kind!r}")


def collect_composition(
    snapshots: Iterable[DailySnapshot],
    kind: str = "ns",
    subset_indices: Optional[Sequence[int]] = None,
    title: str = "",
) -> CompositionSeries:
    """Accumulate a composition series over a snapshot sweep.

    ``kind`` selects name-server (``"ns"``) or hosting (``"hosting"``)
    geography; ``subset_indices`` restricts to a fixed domain set (the
    sanctioned-domain analysis passes the 107 indices).
    """
    series = CompositionSeries(title=title)
    for snapshot in snapshots:
        subset = (
            snapshot.subset(subset_indices)
            if subset_indices is not None
            else snapshot.measured
        )
        labels = _labels_for(snapshot, kind, subset)
        series.add_counts(
            snapshot.date,
            int((labels == LABEL_FULL).sum()),
            int((labels == LABEL_PART).sum()),
            int((labels == LABEL_NON).sum()),
        )
    return series
