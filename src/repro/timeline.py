"""Study timeline: dates, day indexing, and the paper's three phases.

The paper studies 1803 days, 2017-06-18 through 2022-05-25, and divides the
months around the invasion into three phases:

* **pre-conflict** — before 2022-02-24 (the invasion),
* **pre-sanctions** — 2022-02-24 up to (and including) 2022-03-26,
* **post-sanctions** — after 2022-03-26.

Dates are handled as :class:`datetime.date` at API boundaries and as integer
*day indices* (days since :data:`STUDY_START`) internally, which keeps the
columnar simulation fast and unambiguous.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Iterator, List, Union

from .errors import TimelineError

__all__ = [
    "STUDY_START",
    "STUDY_END",
    "STUDY_DAYS",
    "CONFLICT_START",
    "SANCTIONS_EFFECTIVE",
    "CERT_WINDOW_START",
    "CERT_WINDOW_END",
    "REVOCATION_VALIDITY_CUTOFF",
    "Phase",
    "DateLike",
    "as_date",
    "day_index",
    "from_day_index",
    "iter_days",
    "date_range",
    "phase_of",
    "DayClock",
]

#: First day of the OpenINTEL sweep used by the paper.
STUDY_START = _dt.date(2017, 6, 18)
#: Last day of the OpenINTEL sweep used by the paper.
STUDY_END = _dt.date(2022, 5, 25)
#: Total number of days in the study period (the paper reports 1803).
STUDY_DAYS = (STUDY_END - STUDY_START).days + 1

#: Russia invades Ukraine; start of the paper's "pre-sanctions" phase.
CONFLICT_START = _dt.date(2022, 2, 24)
#: Paper's boundary between the pre-sanctions and post-sanctions phases.
SANCTIONS_EFFECTIVE = _dt.date(2022, 3, 26)

#: Certificate issuance analysis window (Section 4.1).
CERT_WINDOW_START = _dt.date(2022, 1, 1)
CERT_WINDOW_END = _dt.date(2022, 5, 15)

#: Revocations are tallied for certificates whose validity ends after this.
REVOCATION_VALIDITY_CUTOFF = _dt.date(2022, 2, 25)

DateLike = Union[_dt.date, str, int]


class Phase(enum.Enum):
    """The paper's three analysis phases around the invasion."""

    PRE_CONFLICT = "pre-conflict"
    PRE_SANCTIONS = "pre-sanctions"
    POST_SANCTIONS = "post-sanctions"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def as_date(value: DateLike) -> _dt.date:
    """Coerce a date-like value to :class:`datetime.date`.

    Accepts a ``date``, an ISO ``YYYY-MM-DD`` string, or an integer day
    index relative to :data:`STUDY_START`.
    """
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return value
    if isinstance(value, str):
        try:
            return _dt.date.fromisoformat(value)
        except ValueError as exc:
            raise TimelineError(f"not an ISO date: {value!r}") from exc
    if isinstance(value, int):
        return from_day_index(value)
    raise TimelineError(f"cannot interpret {value!r} as a date")


def day_index(value: DateLike) -> int:
    """Days since :data:`STUDY_START` (0 for the first study day).

    Negative values and values past the study end are allowed — the
    simulation occasionally needs dates slightly outside the measurement
    window (e.g. certificate validity starting before the window).
    """
    return (as_date(value) - STUDY_START).days


def from_day_index(index: int) -> _dt.date:
    """Inverse of :func:`day_index`."""
    return STUDY_START + _dt.timedelta(days=int(index))


def iter_days(
    start: DateLike = STUDY_START,
    end: DateLike = STUDY_END,
    step: int = 1,
) -> Iterator[_dt.date]:
    """Yield dates from ``start`` to ``end`` inclusive, every ``step`` days."""
    if step < 1:
        raise TimelineError(f"step must be >= 1, got {step}")
    lo, hi = as_date(start), as_date(end)
    if lo > hi:
        raise TimelineError(f"empty range: {lo} > {hi}")
    current = lo
    while current <= hi:
        yield current
        current += _dt.timedelta(days=step)


def date_range(
    start: DateLike = STUDY_START,
    end: DateLike = STUDY_END,
    step: int = 1,
) -> List[_dt.date]:
    """Like :func:`iter_days` but materialised into a list."""
    return list(iter_days(start, end, step))


def phase_of(value: DateLike) -> Phase:
    """Return the paper phase a date belongs to."""
    date = as_date(value)
    if date < CONFLICT_START:
        return Phase.PRE_CONFLICT
    if date <= SANCTIONS_EFFECTIVE:
        return Phase.PRE_SANCTIONS
    return Phase.POST_SANCTIONS


class DayClock:
    """A mutable simulation clock measured in study-day indices.

    Components that need "now" (TTL caches, certificate validity checks)
    share a single clock object so a simulation can advance all of them in
    lockstep.
    """

    def __init__(self, start: DateLike = STUDY_START) -> None:
        self._day = day_index(start)

    @property
    def day(self) -> int:
        """Current day index."""
        return self._day

    @property
    def date(self) -> _dt.date:
        """Current date."""
        return from_day_index(self._day)

    def advance_to(self, value: DateLike) -> None:
        """Move the clock forward to ``value``; moving backwards is an error."""
        target = day_index(value)
        if target < self._day:
            raise TimelineError(
                f"clock cannot move backwards: {self.date} -> {from_day_index(target)}"
            )
        self._day = target

    def tick(self, days: int = 1) -> None:
        """Advance the clock by ``days`` (must be non-negative)."""
        if days < 0:
            raise TimelineError(f"cannot tick backwards ({days} days)")
        self._day += days

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DayClock({self.date.isoformat()})"
