"""Server-sent-event framing for the live event feed.

One tiny dialect of `text/event-stream` shared by the serving side
(:mod:`repro.service.server`) and :meth:`repro.client.QueryClient.
follow_events`, so the two cannot drift: every change event becomes ::

    id: <seq>
    event: <kind>
    data: <canonical event JSON>
    <blank line>

The ``id`` line carries the event's monotonic sequence number, which
is exactly what ``Last-Event-ID`` reconnection needs — a client that
lost its connection mid-stream re-subscribes with the last id it fully
received and the server replays from the durable event log.

When a consumer is too slow for its bounded buffer the server does not
silently skip: it emits an explicit ``gap`` frame whose payload names
the dropped range and whose ``id`` jumps to the end of it, so the
client both *knows* it missed events and resumes cleanly past them
(the events are never lost — they stay in the log and ``/v1/events``
serves them on demand).

:class:`SseParser` is the incremental decoder the client feeds raw
socket chunks into; it tolerates frames split at arbitrary byte
boundaries and ignores comment lines (used as keepalives).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .events import LiveEvent

__all__ = [
    "GAP_EVENT",
    "encode_event_frame",
    "encode_gap_frame",
    "encode_comment",
    "SseFrame",
    "SseParser",
]

#: The synthetic frame kind marking dropped events (slow consumer).
GAP_EVENT = "gap"


def encode_event_frame(event: LiveEvent) -> bytes:
    """One change event as a complete SSE frame."""
    data = json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
    return (
        f"id: {event.seq}\nevent: {event.kind}\ndata: {data}\n\n"
    ).encode("utf-8")


def encode_gap_frame(from_seq: int, to_seq: int) -> bytes:
    """An explicit drop marker covering ``[from_seq, to_seq]``.

    The ``id`` advances to ``to_seq`` so a reconnect resumes *after*
    the dropped range instead of replaying events the server already
    decided this consumer cannot keep up with.
    """
    payload = json.dumps(
        {"dropped": to_seq - from_seq + 1, "from": from_seq, "to": to_seq},
        sort_keys=True,
        separators=(",", ":"),
    )
    return (
        f"id: {to_seq}\nevent: {GAP_EVENT}\ndata: {payload}\n\n"
    ).encode("utf-8")


def encode_comment(text: str) -> bytes:
    """A comment frame (clients ignore it; used as a keepalive)."""
    return f": {text}\n\n".encode("utf-8")


class SseFrame:
    """One decoded frame: ``id``/``event``/``data`` (any may be absent)."""

    __slots__ = ("id", "event", "data")

    def __init__(
        self,
        id: Optional[str] = None,
        event: Optional[str] = None,
        data: str = "",
    ) -> None:
        self.id = id
        self.event = event
        self.data = data

    @property
    def seq(self) -> Optional[int]:
        try:
            return int(self.id) if self.id is not None else None
        except ValueError:
            return None

    def json(self) -> Dict:
        return json.loads(self.data)

    def __repr__(self) -> str:
        return f"SseFrame(id={self.id!r}, event={self.event!r})"


class SseParser:
    """Incremental `text/event-stream` decoder.

    Feed it raw byte chunks as they arrive; it returns the frames each
    chunk completes.  Partial lines and partial frames are buffered —
    a frame only counts once its terminating blank line has been seen,
    so an aborted connection can never yield a half-received event
    (that is what makes mid-event disconnects safe to retry).
    """

    def __init__(self) -> None:
        self._buffer = b""
        self._fields: List[tuple] = []

    @property
    def pending(self) -> bool:
        """True when a partial frame is buffered — the stream tore
        mid-frame and the connection should be resumed, not ended."""
        return bool(self._buffer) or bool(self._fields)

    def feed(self, chunk: bytes) -> List[SseFrame]:
        self._buffer += chunk
        frames: List[SseFrame] = []
        while b"\n" in self._buffer:
            line, self._buffer = self._buffer.split(b"\n", 1)
            text = line.decode("utf-8", errors="replace").rstrip("\r")
            if text == "":
                frame = self._dispatch()
                if frame is not None:
                    frames.append(frame)
                continue
            if text.startswith(":"):
                continue  # comment / keepalive
            name, _, value = text.partition(":")
            if value.startswith(" "):
                value = value[1:]
            self._fields.append((name, value))
        return frames

    def _dispatch(self) -> Optional[SseFrame]:
        if not self._fields:
            return None
        frame = SseFrame()
        data_lines: List[str] = []
        for name, value in self._fields:
            if name == "id":
                frame.id = value
            elif name == "event":
                frame.event = value
            elif name == "data":
                data_lines.append(value)
        frame.data = "\n".join(data_lines)
        self._fields = []
        return frame
