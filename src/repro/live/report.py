"""Per-period reports rendered from the archive and the event log.

``repro report --from A --to B`` compiles everything the live
subsystem learned about a date window into one small, deterministic
document: coverage, the composition shift across the window, and the
change events the detectors emitted inside it.  Everything comes from
durable state — day summaries out of the archive, events out of
``events.log`` — so the same archive always renders byte-identical
output, which is what the golden-pinned report test relies on.

Two formats: ``md`` is the full human report; ``csv`` is just the
event table, one row per event, for spreadsheet ingestion.
"""

from __future__ import annotations

import datetime as _dt
import io
import json
from typing import Dict, List, Optional

from ..errors import LiveError
from ..timeline import DateLike, as_date, phase_of
from .events import EventLog, LiveEvent

__all__ = ["PeriodReport", "compile_report", "render_report"]

REPORT_FORMATS = ("md", "csv")

#: The composition axes a summary carries, in report order.
_AXES = ("ns", "hosting", "tld", "sanctioned")


class PeriodReport:
    """Everything one reporting window distils down to."""

    __slots__ = (
        "start", "end", "dates", "first_summary", "last_summary", "events",
    )

    def __init__(
        self,
        start: _dt.date,
        end: _dt.date,
        dates: List[_dt.date],
        first_summary,
        last_summary,
        events: List[LiveEvent],
    ) -> None:
        self.start = start
        self.end = end
        #: Archived days inside the window, chronological.
        self.dates = dates
        self.first_summary = first_summary
        self.last_summary = last_summary
        #: Events detected inside the window, by sequence number.
        self.events = events

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def compile_report(archive, log: EventLog, start: DateLike,
                   end: DateLike) -> PeriodReport:
    """Gather the window's summaries and events from durable state."""
    start_date, end_date = as_date(start), as_date(end)
    if start_date > end_date:
        raise LiveError(f"empty report window: {start_date} > {end_date}")
    dates = sorted(
        date for date in archive.manifest.days
        if start_date <= date <= end_date
    )
    first_summary = archive.load_summary(dates[0]) if dates else None
    last_summary = archive.load_summary(dates[-1]) if dates else None
    events = [
        event for event in log.load()
        if start_date <= event.date <= end_date
    ]
    return PeriodReport(
        start_date, end_date, dates, first_summary, last_summary, events
    )


def render_report(report: PeriodReport, format: str = "md") -> str:
    """Render a compiled report; ``format`` is ``md`` or ``csv``."""
    if format == "md":
        return _render_markdown(report)
    if format == "csv":
        return _render_csv(report)
    raise LiveError(
        f"unknown report format {format!r} (known: {', '.join(REPORT_FORMATS)})"
    )


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------

def _full_fraction(summary, axis: str) -> Optional[float]:
    triple = getattr(summary, axis)
    total = sum(triple)
    return round(triple[0] / total, 4) if total else None


def _fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.4f}"


def _payload_text(event: LiveEvent) -> str:
    return json.dumps(event.payload, sort_keys=True, separators=(",", ":"))


def _render_markdown(report: PeriodReport) -> str:
    out = io.StringIO()
    out.write(
        f"# Live follow report: {report.start.isoformat()} "
        f"to {report.end.isoformat()}\n\n"
    )
    out.write(
        f"Window phases: {phase_of(report.start)} to "
        f"{phase_of(report.end)}.\n\n"
    )

    out.write("## Coverage\n\n")
    out.write("| metric | value |\n|---|---|\n")
    out.write(f"| archived days in window | {len(report.dates)} |\n")
    first = report.dates[0].isoformat() if report.dates else "n/a"
    last = report.dates[-1].isoformat() if report.dates else "n/a"
    out.write(f"| first archived day | {first} |\n")
    out.write(f"| last archived day | {last} |\n")
    if report.last_summary is not None:
        out.write(
            f"| domains measured (last day) | "
            f"{report.last_summary.measured_count} |\n"
        )
        out.write(
            f"| sanction-list size (last day) | "
            f"{report.last_summary.listed_count} |\n"
        )
    out.write(f"| change events | {len(report.events)} |\n\n")

    if report.first_summary is not None and report.last_summary is not None:
        out.write("## Fully-Russian composition shift\n\n")
        out.write(
            "Fraction of domains fully dependent on Russian "
            "infrastructure, per axis, first vs last archived day.\n\n"
        )
        out.write(f"| axis | {first} | {last} | delta |\n|---|---|---|---|\n")
        for axis in _AXES:
            before = _full_fraction(report.first_summary, axis)
            after = _full_fraction(report.last_summary, axis)
            if before is None or after is None:
                delta = "n/a"
            else:
                delta = f"{after - before:+.4f}"
            out.write(
                f"| {axis} | {_fmt(before)} | {_fmt(after)} | {delta} |\n"
            )
        out.write("\n")

    out.write("## Events by kind\n\n")
    counts = report.kind_counts()
    if counts:
        out.write("| kind | count |\n|---|---|\n")
        for kind in sorted(counts):
            out.write(f"| {kind} | {counts[kind]} |\n")
    else:
        out.write("No change events detected in this window.\n")
    out.write("\n")

    if report.events:
        out.write("## Event log\n\n")
        out.write("| seq | date | kind | payload |\n|---|---|---|---|\n")
        for event in report.events:
            out.write(
                f"| {event.seq} | {event.date.isoformat()} | {event.kind} "
                f"| `{_payload_text(event)}` |\n"
            )
        out.write("\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

def _render_csv(report: PeriodReport) -> str:
    lines = ["seq,date,kind,payload"]
    for event in report.events:
        payload = _payload_text(event).replace('"', '""')
        lines.append(
            f'{event.seq},{event.date.isoformat()},{event.kind},"{payload}"'
        )
    return "\n".join(lines) + "\n"
