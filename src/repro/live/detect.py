"""Seed-pure change detectors over day-over-day summary deltas.

Each detector compares two consecutive :class:`~repro.archive.DaySummary`
objects — yesterday's and today's pre-aggregated counts — and emits
zero or more ``(kind, payload)`` findings.  Detection uses **no
randomness and no wall clock**: it is a pure function of the two
summaries plus the detector's thresholds, so two independent follow
runs over the same scenario and seed produce byte-identical event
logs.  That purity is what the determinism and kill-and-resume chaos
tests pin.

The four stock detectors mirror the paper's headline findings:

* ``provider-exit`` — a hosting ASN that carried a meaningful share of
  domains yesterday all but vanishes today (Section 3.3's Western
  providers terminating Russian customers).
* ``composition-step`` — the full/part/non composition of NS or
  hosting geography takes a day-over-day step larger than the usual
  drift (the Figure 1/2 inflection around the invasion).
* ``ru-ca-issuance-spike`` — a burst of domains becoming *fully*
  dependent on Russian infrastructure in one day.  The archived
  summaries carry no per-CA issuance series, so this reproduction
  proxies the paper's Russian-CA migration (Section 4.1) by the jump
  in fully-Russian NS TLD dependency that accompanies it.
* ``sanctions-migration-burst`` — domains on the sanction lists moving
  onto fully Russian infrastructure in a burst (Section 5's
  sanctions-evasion migration).

Payload values are plain ints and round-to-six-places floats so the
canonical JSON encoding in :mod:`repro.live.events` is stable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Detector",
    "ProviderExitDetector",
    "CompositionStepDetector",
    "IssuanceSpikeDetector",
    "SanctionsMigrationDetector",
    "default_detectors",
    "run_detectors",
]

Finding = Tuple[str, Dict]


def _fraction(numerator: int, denominator: int) -> float:
    return round(numerator / denominator, 6) if denominator else 0.0


class Detector:
    """Base class: compare two summaries, yield ``(kind, payload)``."""

    #: The stable machine-readable event kind this detector emits.
    kind: str = ""

    def detect(self, previous, current) -> List[Finding]:
        raise NotImplementedError


class ProviderExitDetector(Detector):
    """A hosting ASN with real share yesterday is (nearly) gone today."""

    kind = "provider-exit"

    def __init__(self, min_count: int = 8, exit_fraction: float = 0.25) -> None:
        #: Yesterday's minimum domain count for an ASN to be tracked.
        self.min_count = int(min_count)
        #: Today/yesterday ratio at or below which the ASN has "exited".
        self.exit_fraction = float(exit_fraction)

    def detect(self, previous, current) -> List[Finding]:
        findings: List[Finding] = []
        for asn in sorted(previous.asn_counts):
            before = previous.asn_counts[asn]
            if before < self.min_count:
                continue
            after = current.asn_counts.get(asn, 0)
            if after <= before * self.exit_fraction:
                findings.append((self.kind, {
                    "asn": int(asn),
                    "before": int(before),
                    "after": int(after),
                }))
        return findings


class CompositionStepDetector(Detector):
    """The full/part/non composition takes an outsized one-day step."""

    kind = "composition-step"

    def __init__(self, threshold: float = 0.05) -> None:
        #: Minimum day-over-day change in the fully-Russian fraction.
        self.threshold = float(threshold)

    def detect(self, previous, current) -> List[Finding]:
        findings: List[Finding] = []
        for axis in ("ns", "hosting"):
            before_triple = getattr(previous, axis)
            after_triple = getattr(current, axis)
            before = _fraction(before_triple[0], sum(before_triple))
            after = _fraction(after_triple[0], sum(after_triple))
            delta = round(after - before, 6)
            if abs(delta) >= self.threshold:
                findings.append((self.kind, {
                    "axis": axis,
                    "before": before,
                    "after": after,
                    "delta": delta,
                }))
        return findings


class IssuanceSpikeDetector(Detector):
    """A one-day burst of domains turning fully Russian-dependent.

    Proxies the paper's Russian-CA issuance spike: the summaries carry
    no per-CA counts, and the migration to Russian CAs coincides with
    domains becoming fully dependent on Russian NS TLD infrastructure.
    """

    kind = "ru-ca-issuance-spike"

    def __init__(self, spike_fraction: float = 0.2, min_jump: int = 5) -> None:
        #: Relative day-over-day growth of the fully-dependent count.
        self.spike_fraction = float(spike_fraction)
        #: Absolute growth floor, so tiny archives do not false-alarm.
        self.min_jump = int(min_jump)

    def detect(self, previous, current) -> List[Finding]:
        before = previous.tld[0]
        after = current.tld[0]
        jump = after - before
        if jump >= max(self.min_jump, self.spike_fraction * max(before, 1)):
            return [(self.kind, {
                "before": int(before),
                "after": int(after),
                "jump": int(jump),
            })]
        return []


class SanctionsMigrationDetector(Detector):
    """Sanctioned domains migrate onto fully Russian infrastructure."""

    kind = "sanctions-migration-burst"

    def __init__(self, min_burst: int = 3, burst_fraction: float = 0.02) -> None:
        #: Absolute one-day growth floor of the sanctioned-full count.
        self.min_burst = int(min_burst)
        #: Growth floor as a fraction of the sanction-list size.
        self.burst_fraction = float(burst_fraction)

    def detect(self, previous, current) -> List[Finding]:
        before = previous.sanctioned[0]
        after = current.sanctioned[0]
        burst = after - before
        floor = max(self.min_burst,
                    self.burst_fraction * max(current.listed_count, 1))
        if burst >= floor:
            return [(self.kind, {
                "before": int(before),
                "after": int(after),
                "burst": int(burst),
                "listed": int(current.listed_count),
            })]
        return []


def default_detectors() -> List[Detector]:
    """The stock detector set ``repro serve --follow`` runs."""
    return [
        ProviderExitDetector(),
        CompositionStepDetector(),
        IssuanceSpikeDetector(),
        SanctionsMigrationDetector(),
    ]


def run_detectors(
    detectors: Sequence[Detector],
    previous: Optional[object],
    current: Optional[object],
) -> List[Finding]:
    """All findings for one day transition, in deterministic order.

    Order is detector order then each detector's internal (sorted)
    order, so the sequence numbers the engine assigns are reproducible.
    The first archived day — and any v2 shard without a summary block —
    has nothing to compare against and yields no findings.
    """
    if previous is None or current is None:
        return []
    findings: List[Finding] = []
    for detector in detectors:
        findings.extend(detector.detect(previous, current))
    return findings
