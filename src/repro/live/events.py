"""The replayable change-event log behind ``/v1/events``.

Every event the change detectors emit is appended to ``events.log`` in
the archive directory as one CRC-prefixed canonical-JSON line::

    <crc32> {"day":1712,"kind":"provider-exit","payload":{...},"seq":3}

Sequence numbers are assigned monotonically from 1 and never reused;
because detection is a pure function of the archived day summaries,
replaying the same scenario always regenerates the identical line for
the identical sequence number.  That is what makes crash recovery
simple: resume truncates the log back to the last journal checkpoint's
``event_cursor`` and lets re-ingestion re-emit the tail — the bytes
that come back are the bytes that were lost, so consumers see neither
gaps nor duplicates.

Appends go through an ``O_APPEND`` write plus ``fsync``; a SIGKILL can
tear at most the final line, which the CRC prefix catches on load.
Like the follow journal, the filename is deliberately outside the
``manifest.json`` / ``*.shard`` set so the archive digest ignores it.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import LiveError
from ..timeline import from_day_index

__all__ = ["LiveEvent", "EventLog", "EVENT_LOG_FILENAME"]

#: The event log's filename inside the archive directory.
EVENT_LOG_FILENAME = "events.log"


class LiveEvent:
    """One detected change: a sequenced, dated, typed payload."""

    __slots__ = ("seq", "day", "kind", "payload")

    def __init__(self, seq: int, day: int, kind: str, payload: Dict) -> None:
        self.seq = int(seq)
        self.day = int(day)
        self.kind = str(kind)
        self.payload = dict(payload)
        if self.seq < 1:
            raise LiveError(f"event sequence numbers start at 1: {self.seq}")

    @property
    def date(self):
        """The study date the event was detected on."""
        return from_day_index(self.day)

    def to_dict(self) -> Dict:
        """The wire shape served by ``/v1/events`` and the SSE stream."""
        return {
            "seq": self.seq,
            "day": self.day,
            "date": self.date.isoformat(),
            "kind": self.kind,
            "payload": self.payload,
        }

    def to_line(self) -> str:
        body = json.dumps(
            {"seq": self.seq, "day": self.day, "kind": self.kind,
             "payload": self.payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        return f"{crc:08x} {body}"

    @classmethod
    def from_line(cls, line: str) -> "LiveEvent":
        """Parse one log line; raises :class:`LiveError` if damaged."""
        crc_text, _, body = line.rstrip("\n").partition(" ")
        try:
            crc = int(crc_text, 16)
        except ValueError as exc:
            raise LiveError(f"unparseable event CRC: {line!r}") from exc
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
            raise LiveError(f"event record failed its CRC: {line!r}")
        try:
            decoded = json.loads(body)
        except ValueError as exc:
            raise LiveError(f"unparseable event JSON: {line!r}") from exc
        return cls(decoded["seq"], decoded["day"], decoded["kind"],
                   decoded["payload"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LiveEvent):
            return NotImplemented
        return self.to_line() == other.to_line()

    def __repr__(self) -> str:
        return f"LiveEvent(#{self.seq} {self.date.isoformat()} {self.kind})"


class EventLog:
    """Durable, replayable storage for :class:`LiveEvent` records."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.path = os.path.join(self.directory, EVENT_LOG_FILENAME)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self) -> List[LiveEvent]:
        """All good records, in order; a torn tail is dropped.

        Sequence numbers must be exactly ``1, 2, 3, …`` — the log is
        the event feed's source of truth, so a hole here would be a
        hole every consumer sees.  Out-of-order or gapped records end
        the readable prefix the same way a CRC failure does.
        """
        events: List[LiveEvent] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        for line in lines:
            if not line.strip():
                continue
            if not line.endswith("\n"):
                break  # torn final line without its newline
            try:
                event = LiveEvent.from_line(line)
            except LiveError:
                break
            if event.seq != len(events) + 1:
                break
            events.append(event)
        return events

    def cursor(self) -> int:
        """The last durable sequence number (0 when the log is empty)."""
        events = self.load()
        return events[-1].seq if events else 0

    def read_since(
        self, since: int, limit: Optional[int] = None
    ) -> List[LiveEvent]:
        """Events with ``seq > since``, oldest first."""
        events = [event for event in self.load() if event.seq > since]
        return events[:limit] if limit is not None else events

    def tail(self, offset: int) -> Tuple[List[LiveEvent], int]:
        """Complete new events past byte ``offset``; returns new offset.

        The cheap incremental read the SSE pump polls with: only bytes
        past ``offset`` are read, and only whole (newline-terminated,
        CRC-good) lines are consumed — a torn tail stays unconsumed
        until the writer finishes it.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except FileNotFoundError:
            return [], offset
        events: List[LiveEvent] = []
        consumed = 0
        for raw in chunk.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break
            try:
                events.append(LiveEvent.from_line(raw.decode("utf-8")))
            except (LiveError, UnicodeDecodeError):
                break
            consumed += len(raw)
        return events, offset + consumed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, events: List[LiveEvent]) -> None:
        """Durably append ``events`` (one fsync for the batch)."""
        if not events:
            return
        data = "".join(event.to_line() + "\n" for event in events)
        with open(self.path, "ab") as handle:
            handle.write(data.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())

    def truncate_to(self, cursor: int) -> int:
        """Drop events with ``seq > cursor``; returns how many went.

        Called on resume with the last journal checkpoint's
        ``event_cursor``: anything past it was emitted but never
        checkpointed, and re-ingestion will deterministically re-emit
        it.  Rewrites in place only when something must go.
        """
        events = self.load()
        keep = [event for event in events if event.seq <= cursor]
        dropped = len(events) - len(keep)
        data = "".join(event.to_line() + "\n" for event in keep)
        try:
            on_disk = os.path.getsize(self.path)
        except OSError:
            on_disk = 0
        if dropped == 0 and on_disk == len(data.encode("utf-8")):
            # Nothing to drop and no torn tail bytes after the good
            # prefix; also covers the missing-file case.
            return 0
        temp_path = f"{self.path}.tmp.{os.getpid()}"
        with open(temp_path, "wb") as handle:
            handle.write(data.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        return dropped
