"""The follow engine: live, crash-safe, day-by-day archive extension.

:class:`FollowEngine` drives the simulated clock forward on a
configurable cadence.  Each cycle ingests one new study day through
the resumable :class:`~repro.archive.ArchiveBuilder` (retrying
transient failures with bounded backoff, quarantining and re-sweeping
corrupt shards), runs the change detectors over the day-over-day
summary delta, durably appends the resulting events, and commits a
journal checkpoint ``(day, archive_digest, event_cursor)``.

The commit order is the whole crash-safety story::

    shard (atomic) → events (fsync append) → journal (atomic)

A SIGKILL between any two steps leaves either an orphan shard (adopted
by the next build), or checkpoint-less event-log tail entries
(truncated on resume and deterministically re-emitted).  Either way a
resumed run converges on the byte-identical archive digest and event
sequence of an uninterrupted one — the property the chaos tests pin.

Failures never escape :meth:`advance`: a day that cannot be ingested
within the retry budget bumps a consecutive-failure counter that walks
the degradation ladder ``following → lagging → stalled``.  The ladder,
the ingest lag, and the event cursor are mirrored into an advisory
``follow.status.json`` (excluded from the archive digest) that every
serving worker — not just the one that follows — reads for
``/healthz`` and for switching queries to stale-mode headers.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import time
from typing import Dict, List, Optional

from ..archive import ArchiveBuilder, archive_digest, shard_filename
from ..archive.manifest import Manifest
from ..archive.store import QUARANTINE_SUFFIX
from ..errors import ArchiveError, LiveError, RecoveryError
from ..faults.plan import TransientIOError, WorkerCrashed, sync_fault_metrics
from ..ioutil import atomic_write_bytes, backoff_seconds
from ..timeline import (
    DateLike,
    DayClock,
    STUDY_END,
    STUDY_START,
    as_date,
    day_index,
)
from .detect import default_detectors, run_detectors
from .events import EventLog, LiveEvent
from .journal import Checkpoint, FollowJournal

__all__ = [
    "FOLLOWING",
    "LAGGING",
    "STALLED",
    "STATUS_FILENAME",
    "FollowOptions",
    "FollowEngine",
    "read_follow_status",
]

#: Healthy: the last cycle ingested its day.
FOLLOWING = "following"
#: At least one consecutive cycle failed; still retrying.
LAGGING = "lagging"
#: ``stall_after`` consecutive cycles failed; serving goes stale-mode.
STALLED = "stalled"

#: Advisory status mirror for the serving workers.  Like the journal
#: and event log it is not ``manifest.json`` / ``*.shard``, so the
#: archive digest ignores it.
STATUS_FILENAME = "follow.status.json"


class FollowOptions:
    """Picklable knobs for a follow run (crosses the worker fork)."""

    __slots__ = (
        "start", "end", "cadence_days", "interval_seconds",
        "stall_after", "retries", "backoff",
    )

    def __init__(
        self,
        start: Optional[DateLike] = None,
        end: Optional[DateLike] = None,
        cadence_days: int = 1,
        interval_seconds: float = 0.0,
        stall_after: int = 3,
        retries: int = 3,
        backoff: float = 0.01,
    ) -> None:
        self.start = as_date(start) if start is not None else STUDY_START
        self.end = as_date(end) if end is not None else STUDY_END
        self.cadence_days = int(cadence_days)
        #: Real seconds slept between cycles (0 = as fast as possible);
        #: this is the "configurable cadence" of the simulated clock in
        #: wall time, independent of the study-day step.
        self.interval_seconds = float(interval_seconds)
        #: Consecutive failed cycles before the ladder reads "stalled".
        self.stall_after = int(stall_after)
        #: Per-day ingest/detect retry budget.
        self.retries = int(retries)
        self.backoff = float(backoff)
        if self.cadence_days < 1:
            raise LiveError(f"cadence must be >= 1 day: {self.cadence_days}")
        if self.stall_after < 1:
            raise LiveError(f"stall_after must be >= 1: {self.stall_after}")
        if self.start > self.end:
            raise LiveError(f"empty follow range: {self.start} > {self.end}")

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state) -> None:
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class FollowEngine:
    """Extends one archive directory live, one study day at a time."""

    def __init__(
        self,
        directory: str,
        config,
        options: Optional[FollowOptions] = None,
        detectors=None,
        faults=None,
        metrics=None,
        workers: int = 1,
    ) -> None:
        self.directory = str(directory)
        self.config = config
        self.options = options or FollowOptions()
        self.detectors = (
            detectors if detectors is not None else default_detectors()
        )
        self.faults = faults
        self.metrics = metrics
        self.workers = int(workers)
        self.journal = FollowJournal(self.directory, faults=faults)
        self.log = EventLog(self.directory)
        self.clock = DayClock(self.options.start)
        self.consecutive_failures = 0
        self._builder: Optional[ArchiveBuilder] = None
        self._archive = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Where this engine sits on the degradation ladder."""
        if self.consecutive_failures >= self.options.stall_after:
            return STALLED
        if self.consecutive_failures > 0:
            return LAGGING
        return FOLLOWING

    @property
    def ingest_lag_days(self) -> int:
        """How many study days behind schedule the engine is.

        Every failed cycle is one cadence step the clock should have
        advanced but did not, so the lag is simply the consecutive
        failure count times the cadence.  A healthy engine reports 0.
        """
        return self.consecutive_failures * self.options.cadence_days

    def last_checkpoint(self) -> Optional[Checkpoint]:
        return self.journal.last()

    def next_date(self) -> Optional[_dt.date]:
        """The next study day to ingest, or ``None`` when caught up."""
        last = self.journal.last()
        if last is None:
            candidate = self.options.start
        else:
            candidate = last.date + _dt.timedelta(
                days=self.options.cadence_days
            )
        return candidate if candidate <= self.options.end else None

    @property
    def done(self) -> bool:
        """True once the follow range is fully ingested."""
        return self.next_date() is None

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def resume(self) -> Optional[Checkpoint]:
        """Recover durable state after a restart (or a SIGKILL).

        Loads the journal (dropping any torn tail), truncates the event
        log back to the last checkpoint's cursor — events past it were
        never committed and will be re-emitted identically — and parks
        the clock on the checkpoint day.  Safe to call on a fresh
        directory: everything is simply empty.
        """
        checkpoint = self.journal.last()
        cursor = checkpoint.event_cursor if checkpoint else 0
        dropped = self.log.truncate_to(cursor)
        if dropped and self.metrics is not None:
            self.metrics.record_recovery("live_events_truncated", dropped)
        if checkpoint is not None and checkpoint.day > self.clock.day:
            self.clock.advance_to(checkpoint.day)
        self._write_status()
        return checkpoint

    # ------------------------------------------------------------------
    # One follow cycle
    # ------------------------------------------------------------------

    def advance(self) -> Optional[Checkpoint]:
        """Attempt one cycle; never raises for ingest problems.

        Returns the new checkpoint on success (resetting the ladder) or
        ``None`` on failure (climbing it).  This is the method the
        serving pool's follow loop calls — a bad day degrades service
        to stale mode, it never takes the pool down.
        """
        if self.done:
            self._write_status()
            return None
        try:
            checkpoint = self.step()
        except LiveError:
            self.consecutive_failures += 1
            self._count("live_ingest_failures")
            self._write_status()
            return None
        self.consecutive_failures = 0
        self._write_status()
        return checkpoint

    def step(self) -> Optional[Checkpoint]:
        """Ingest exactly one day; raises :class:`LiveError` on failure.

        The cycle is idempotent: if the previous attempt died anywhere
        — mid-build, after the event append, before the journal write —
        re-running converges on the identical checkpoint, because the
        builder adopts or re-sweeps the day deterministically and the
        event log is first truncated back to the last durable cursor.
        """
        date = self.next_date()
        if date is None:
            return None
        key_base = date.isoformat()
        last = self.journal.last()
        base_cursor = last.event_cursor if last else 0
        dropped = self.log.truncate_to(base_cursor)
        if dropped:
            self._count("live_events_truncated_inline", dropped)

        self._ingest(date, key_base)
        archive = self._open_archive()
        findings = self._detect(archive, date, key_base)
        events = [
            LiveEvent(base_cursor + index + 1, day_index(date), kind, payload)
            for index, (kind, payload) in enumerate(findings)
        ]
        if events:
            self.log.append(events)
            self._count("live_events_emitted", len(events))

        digest = archive_digest(self.directory)
        checkpoint = Checkpoint(
            day_index(date), digest, base_cursor + len(events)
        )
        try:
            retries = self.journal.append(checkpoint)
        except RecoveryError as exc:
            raise LiveError(
                f"journal checkpoint for {date} failed: {exc}"
            ) from exc
        self._count("live_journal_fsyncs", 1 + retries)
        self._count("live_days_ingested")
        self.clock.advance_to(date)
        sync_fault_metrics(self.faults, self.metrics)
        return checkpoint

    def run(
        self,
        stop_event=None,
        max_cycles: Optional[int] = None,
    ) -> int:
        """Follow until caught up, stopped, or ``max_cycles`` spent.

        Returns the number of successful cycles.  Keeps attempting even
        while stalled (so a healed fault recovers the ladder), sleeping
        ``interval_seconds`` between cycles.
        """
        succeeded = 0
        cycles = 0
        while not self.done:
            if stop_event is not None and stop_event.is_set():
                break
            if max_cycles is not None and cycles >= max_cycles:
                break
            cycles += 1
            if self.advance() is not None:
                succeeded += 1
            if self.options.interval_seconds > 0:
                time.sleep(self.options.interval_seconds)
        self._write_status()
        return succeeded

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count(self, name: str, count: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.record_counter(name, count)

    def _get_builder(self) -> ArchiveBuilder:
        if self._builder is None:
            self._builder = ArchiveBuilder(
                self.directory,
                self.config,
                workers=self.workers,
                metrics=self.metrics,
                faults=self.faults,
            )
        return self._builder

    def _open_archive(self):
        if self._archive is None:
            self._archive = self._get_builder().open()
        else:
            self._archive.reload()
        return self._archive

    def _ingest(self, date: _dt.date, key_base: str) -> None:
        """Build the day's shard, retrying and quarantining as needed."""
        failure: Optional[Exception] = None
        for attempt in range(self.options.retries + 1):
            key = f"{key_base}#{attempt}"
            try:
                if self.faults is not None:
                    self.faults.check("live.ingest_day", key)
                self._get_builder().build(date, date, 1)
                return
            except (TransientIOError, WorkerCrashed, RecoveryError) as exc:
                failure = exc
            except ArchiveError as exc:
                # A damaged shard (this day's or the manifest's record
                # of it) blocks the build: quarantine it aside so the
                # retry re-sweeps the day from scratch.
                if self._quarantine_shard(date):
                    self._count("live_quarantines")
                failure = exc
            if attempt >= self.options.retries:
                break
            self._count("live_ingest_retries")
            time.sleep(backoff_seconds(attempt, self.options.backoff))
        raise LiveError(f"could not ingest {date}: {failure}") from failure

    def _quarantine_shard(self, date: _dt.date) -> bool:
        """Move the day's shard aside and forget its manifest entry."""
        path = os.path.join(self.directory, shard_filename(date))
        moved = False
        if os.path.exists(path):
            os.replace(path, path + QUARANTINE_SUFFIX)
            moved = True
        try:
            manifest = Manifest.load(self.directory)
        except (OSError, ArchiveError):
            return moved
        if date in manifest.days:
            del manifest.days[date]
            manifest.save(self.directory)
        return moved

    def _detect(self, archive, date: _dt.date, key_base: str):
        """Run the detectors over the day's summary delta, with retry."""
        previous_date = date - _dt.timedelta(days=self.options.cadence_days)
        failure: Optional[Exception] = None
        for attempt in range(self.options.retries + 1):
            key = f"{key_base}#{attempt}"
            try:
                if self.faults is not None:
                    self.faults.check("live.detector", key)
                previous = None
                if previous_date in archive.manifest.days:
                    previous = archive.load_summary(previous_date)
                current = archive.load_summary(date)
                return run_detectors(self.detectors, previous, current)
            except (TransientIOError, WorkerCrashed, ArchiveError) as exc:
                failure = exc
            if attempt >= self.options.retries:
                break
            self._count("live_detector_retries")
            time.sleep(backoff_seconds(attempt, self.options.backoff))
        raise LiveError(
            f"change detection for {date} failed: {failure}"
        ) from failure

    # ------------------------------------------------------------------
    # Status mirror
    # ------------------------------------------------------------------

    def status(self) -> Dict:
        """The follow-state snapshot mirrored for the serving workers."""
        checkpoint = self.journal.last()
        return {
            "state": self.state,
            "ingest_lag_days": self.ingest_lag_days,
            "consecutive_failures": self.consecutive_failures,
            "last_day": checkpoint.day if checkpoint else None,
            "last_date": (
                checkpoint.date.isoformat() if checkpoint else None
            ),
            "event_cursor": checkpoint.event_cursor if checkpoint else 0,
            "end": self.options.end.isoformat(),
            "cadence_days": self.options.cadence_days,
            "done": self.done,
        }

    def _write_status(self) -> None:
        # Advisory and rewritten every cycle: no fault site, but still
        # atomic so readers never see a torn JSON document.
        data = json.dumps(self.status(), sort_keys=True).encode("utf-8")
        try:
            atomic_write_bytes(
                os.path.join(self.directory, STATUS_FILENAME), data
            )
        except (OSError, RecoveryError):
            pass  # status is best-effort; the journal is the truth


def read_follow_status(directory: str) -> Optional[Dict]:
    """The latest advisory follow status, or ``None`` when not following.

    Serving workers (all of them, not just the follower) call this for
    ``/healthz`` and for the stale-mode switch; a missing or torn file
    reads as "no live follow here".
    """
    path = os.path.join(str(directory), STATUS_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
