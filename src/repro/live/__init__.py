"""Live mode: follow the simulated timeline and publish what changes.

The offline pipeline builds an archive once and serves it; this
package keeps the archive *moving*.  A :class:`FollowEngine` ingests
each new study day through the resumable builder, a set of seed-pure
change detectors (:mod:`repro.live.detect`) turns day-over-day summary
deltas into a monotonically-sequenced event log
(:mod:`repro.live.events`), and a CRC-checked journal
(:mod:`repro.live.journal`) checkpoints ``(day, archive_digest,
event_cursor)`` so a SIGKILL anywhere resumes byte-identically.  The
serving layer exposes the feed as ``/v1/events`` and an SSE stream
(:mod:`repro.live.sse`), and :mod:`repro.live.report` renders
per-period reports from the same durable state.
"""

from .detect import (
    CompositionStepDetector,
    Detector,
    IssuanceSpikeDetector,
    ProviderExitDetector,
    SanctionsMigrationDetector,
    default_detectors,
    run_detectors,
)
from .engine import (
    FOLLOWING,
    LAGGING,
    STALLED,
    STATUS_FILENAME,
    FollowEngine,
    FollowOptions,
    read_follow_status,
)
from .events import EVENT_LOG_FILENAME, EventLog, LiveEvent
from .journal import JOURNAL_FILENAME, Checkpoint, FollowJournal
from .report import PeriodReport, compile_report, render_report
from .sse import (
    GAP_EVENT,
    SseFrame,
    SseParser,
    encode_comment,
    encode_event_frame,
    encode_gap_frame,
)

__all__ = [
    "FOLLOWING",
    "LAGGING",
    "STALLED",
    "STATUS_FILENAME",
    "JOURNAL_FILENAME",
    "EVENT_LOG_FILENAME",
    "GAP_EVENT",
    "Checkpoint",
    "FollowJournal",
    "LiveEvent",
    "EventLog",
    "Detector",
    "ProviderExitDetector",
    "CompositionStepDetector",
    "IssuanceSpikeDetector",
    "SanctionsMigrationDetector",
    "default_detectors",
    "run_detectors",
    "FollowOptions",
    "FollowEngine",
    "read_follow_status",
    "PeriodReport",
    "compile_report",
    "render_report",
    "SseFrame",
    "SseParser",
    "encode_event_frame",
    "encode_gap_frame",
    "encode_comment",
]
