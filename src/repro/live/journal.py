"""The follow journal: crash-safe checkpoints for the live engine.

``follow.journal`` is an append-only text file of CRC-checked records,
one per successfully ingested day::

    v1 <day_index> <archive_digest> <event_cursor> <crc32>

The CRC covers the record body, so a torn tail (a SIGKILL mid-write)
is detected and dropped on load — everything up to the last good
record survives, and the engine resumes from there.  The file is
*logically* append-only but *physically* rewritten through
:func:`repro.ioutil.atomic_write_bytes` on every checkpoint: the
rename is atomic, so no crash window ever exposes a journal that
mixes old and new bytes, and the ``live.journal_write`` /
``live.journal_write.bytes`` fault sites exercise exactly the same
torn-write and corruption recovery the shard writers get.

A checkpoint records everything resume needs:

* ``day`` — the index of the last fully ingested study day;
* ``digest`` — :func:`repro.archive.archive_digest` of the archive at
  checkpoint time, the identity the kill-and-resume tests compare;
* ``event_cursor`` — how many change events were durable when the day
  committed, so resume can truncate the event log back to the last
  checkpoint and re-emit deterministically with no gaps or duplicates.
"""

from __future__ import annotations

import os
import zlib
from typing import List, Optional

from ..errors import LiveError
from ..ioutil import atomic_write_bytes
from ..timeline import from_day_index

__all__ = ["Checkpoint", "FollowJournal", "JOURNAL_FILENAME"]

#: The journal's filename inside the archive directory.  Deliberately
#: not ``*.shard`` / ``manifest.json`` so :func:`archive_digest`
#: ignores it — live bookkeeping never perturbs archive identity.
JOURNAL_FILENAME = "follow.journal"

_VERSION = "v1"


class Checkpoint:
    """One durable follow-state record: ``(day, digest, event_cursor)``."""

    __slots__ = ("day", "digest", "event_cursor")

    def __init__(self, day: int, digest: str, event_cursor: int) -> None:
        self.day = int(day)
        self.digest = str(digest)
        self.event_cursor = int(event_cursor)
        if self.event_cursor < 0:
            raise LiveError(f"negative event cursor: {self.event_cursor}")

    @property
    def date(self):
        """The checkpoint's calendar date."""
        return from_day_index(self.day)

    def to_line(self) -> str:
        body = f"{_VERSION} {self.day} {self.digest} {self.event_cursor}"
        crc = zlib.crc32(body.encode("ascii")) & 0xFFFFFFFF
        return f"{body} {crc:08x}"

    @classmethod
    def from_line(cls, line: str) -> "Checkpoint":
        """Parse one journal line; raises :class:`LiveError` if damaged."""
        body, _, crc_text = line.rstrip("\n").rpartition(" ")
        try:
            crc = int(crc_text, 16)
        except ValueError as exc:
            raise LiveError(f"unparseable journal CRC: {line!r}") from exc
        if zlib.crc32(body.encode("ascii")) & 0xFFFFFFFF != crc:
            raise LiveError(f"journal record failed its CRC: {line!r}")
        fields = body.split(" ")
        if len(fields) != 4 or fields[0] != _VERSION:
            raise LiveError(f"malformed journal record: {line!r}")
        return cls(int(fields[1]), fields[2], int(fields[3]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Checkpoint):
            return NotImplemented
        return (self.day, self.digest, self.event_cursor) == (
            other.day, other.digest, other.event_cursor
        )

    def __repr__(self) -> str:
        return (
            f"Checkpoint({self.date.isoformat()}, "
            f"{self.digest[:12]}…, cursor={self.event_cursor})"
        )


class FollowJournal:
    """Loads and extends ``follow.journal`` in one archive directory."""

    def __init__(self, directory: str, faults=None) -> None:
        self.directory = str(directory)
        self.path = os.path.join(self.directory, JOURNAL_FILENAME)
        self.faults = faults
        self._records: Optional[List[Checkpoint]] = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self) -> List[Checkpoint]:
        """All good records, in order; torn or damaged tails are dropped.

        A record that fails its CRC ends the readable prefix: the file
        is append-only, so nothing after a damaged line can be trusted.
        Monotonicity is enforced — a journal whose days go backwards
        was tampered with, not torn, and raises.
        """
        records: List[Checkpoint] = []
        try:
            with open(self.path, "r", encoding="ascii") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            self._records = []
            return []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = Checkpoint.from_line(line)
            except LiveError:
                break
            if records and record.day <= records[-1].day:
                raise LiveError(
                    f"journal days not increasing: {records[-1].day} "
                    f"then {record.day} in {self.path}"
                )
            if records and record.event_cursor < records[-1].event_cursor:
                raise LiveError(
                    f"journal event cursor went backwards in {self.path}"
                )
            records.append(record)
        self._records = records
        return list(records)

    def last(self) -> Optional[Checkpoint]:
        """The most recent durable checkpoint, or ``None``."""
        if self._records is None:
            self.load()
        return self._records[-1] if self._records else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, checkpoint: Checkpoint) -> int:
        """Durably append one checkpoint; returns write retries used.

        The whole journal is rewritten atomically (it is one short line
        per ingested day), going through the ``live.journal_write``
        fault site so injected torn writes and bit flips are retried
        with read-back verification exactly like shard writes.
        """
        if self._records is None:
            self.load()
        records = self._records or []
        if records and checkpoint.day <= records[-1].day:
            raise LiveError(
                f"checkpoint for day {checkpoint.day} does not advance the "
                f"journal (last: day {records[-1].day})"
            )
        if records and checkpoint.event_cursor < records[-1].event_cursor:
            raise LiveError("checkpoint would move the event cursor backwards")
        lines = [record.to_line() for record in records]
        lines.append(checkpoint.to_line())
        data = ("\n".join(lines) + "\n").encode("ascii")
        retries = atomic_write_bytes(
            self.path, data, faults=self.faults, site="live.journal_write"
        )
        records.append(checkpoint)
        self._records = records
        return retries
