"""Exception hierarchy for the where-ru reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with one ``except`` clause while still being able to
discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TimelineError(ReproError):
    """A date fell outside the study period or a period was ill-formed."""


class AddressError(ReproError):
    """An IPv4 address or prefix could not be parsed or is invalid."""


class AllocationError(ReproError):
    """An address allocator ran out of space or received a bad request."""


class GeolocationError(ReproError):
    """A geolocation database was queried incorrectly or is inconsistent."""


class DnsError(ReproError):
    """Base class for DNS-subsystem errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid.

    The trailing underscore avoids shadowing the Python builtin
    :class:`NameError`; the public alias is ``InvalidDomainName``.
    """


InvalidDomainName = NameError_


class PunycodeError(DnsError):
    """A label could not be punycode-encoded or -decoded (RFC 3492)."""


class ZoneError(DnsError):
    """A zone is internally inconsistent or a record does not belong in it."""


class ResolutionError(DnsError):
    """The iterative resolver could not complete a lookup."""


class ServfailError(ResolutionError):
    """Resolution failed in a way a real resolver would report as SERVFAIL."""


class PkiError(ReproError):
    """Base class for WebPKI-subsystem errors."""


class IssuanceError(PkiError):
    """A certificate authority refused or failed to issue a certificate."""


class RevocationError(PkiError):
    """A revocation request was invalid (unknown serial, wrong issuer...)."""


class CtLogError(ReproError):
    """A certificate transparency log rejected a submission or query."""


class ProofError(CtLogError):
    """A Merkle inclusion or consistency proof failed verification."""


class RegistryError(ReproError):
    """A registry operation (registration, whois lookup) was invalid."""


class ScenarioError(ReproError):
    """A simulation scenario is ill-configured."""


class MeasurementError(ReproError):
    """A measurement collector was driven incorrectly."""


class ArchiveError(ReproError):
    """A measurement archive is corrupt, stale, or mismatched."""


class ArchiveCorruptError(ArchiveError):
    """Shard bytes are damaged (bit flip, truncation, bad decode)."""


class ArchiveStaleError(ArchiveError):
    """A shard disagrees with the manifest (CRC, date, record count)."""


class ArchiveMismatchError(ArchiveError):
    """An archive was built under a different scenario or collector."""


class FaultError(ReproError):
    """A fault-injection plan is ill-configured."""


class RecoveryError(ReproError):
    """The pipeline could not self-heal within its retry budget."""


class AnalysisError(ReproError):
    """An analysis accumulator received inconsistent input."""


class DeadlineExceeded(ReproError):
    """A request's time budget ran out before the work completed.

    The serving layer maps this to HTTP 504; offline callers see it
    only if they installed a deadline themselves.
    """


class QueryError(ReproError):
    """A query spec is malformed or names an unknown target."""


class LiveError(ReproError):
    """The live follow engine hit an unrecoverable ingest problem."""
