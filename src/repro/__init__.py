"""where-ru: a full reproduction of "Where .ru? Assessing the Impact of
Conflict on Russian Domain Infrastructure" (Jonker et al., IMC 2022).

The package is layered:

* substrates — :mod:`repro.net`, :mod:`repro.geo`, :mod:`repro.dns`,
  :mod:`repro.registry`, :mod:`repro.providers`, :mod:`repro.pki`,
  :mod:`repro.ctlog`, :mod:`repro.scanner`, :mod:`repro.sanctions`;
* the simulated world and calibrated conflict scenario — :mod:`repro.sim`;
* OpenINTEL-style measurement — :mod:`repro.measurement`;
* the paper's analysis pipeline — :mod:`repro.core`;
* per-figure/per-table reproductions — :mod:`repro.experiments`.

Quickstart::

    from repro.experiments import ExperimentContext, run_experiment
    from repro.sim import ConflictScenarioConfig

    context = ExperimentContext(config=ConflictScenarioConfig(scale=1000))
    print(run_experiment("fig1", context).render())
"""

from . import timeline
from .errors import ReproError
from .experiments import ExperimentContext, run_all, run_experiment
from .sim import ConflictScenarioConfig, build_scenario, build_world

__version__ = "1.0.0"

__all__ = [
    "timeline",
    "ReproError",
    "ExperimentContext",
    "run_all",
    "run_experiment",
    "ConflictScenarioConfig",
    "build_scenario",
    "build_world",
    "__version__",
]
