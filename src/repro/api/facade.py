"""The analysis facade: one entry point for every consumer.

:class:`AnalysisFacade` owns the cached longitudinal sweeps that used to
live directly on :class:`~repro.experiments.context.ExperimentContext`
(whose ``full_sweep()``/``_run_recent()`` are now thin deprecated shims
over this class) and executes :class:`~repro.api.spec.QuerySpec` queries
against them.  ``repro query``, ``repro serve``, and the figure
experiments all route through here, so the offline CLI path and the
HTTP service are one code path producing byte-identical JSON.

The facade is thread-safe: the service executes queries on a bounded
thread pool, and the sweep caches are computed at most once under a
lock while cached reads stay lock-free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

from ..core.reducers import (
    FullSweepReducer,
    RecentWindowReducer,
    RecentWindowSeries,
    SweepSeries,
    merge_recent_records,
)
from ..core.summary import compute_headline_stats
from ..errors import QueryError
from ..net.ip import format_ipv4
from ..timeline import STUDY_END, STUDY_START, as_date
from .deadline import check_deadline
from .spec import SCHEMA_VERSION, SERIES_NAMES, QueryResult, QuerySpec

__all__ = ["AnalysisFacade", "execute_query"]

#: Default page size for day-level record slices (kept bounded so one
#: request cannot materialise an entire population).
DEFAULT_RECORDS_LIMIT = 100

SpecLike = Union[QuerySpec, Dict[str, object], str]


def _as_spec(spec: SpecLike) -> QuerySpec:
    if isinstance(spec, QuerySpec):
        return spec
    if isinstance(spec, str):
        return QuerySpec.from_json(spec)
    if isinstance(spec, dict):
        return QuerySpec.from_dict(spec)
    raise QueryError(f"cannot build a query spec from {type(spec).__name__}")


def _range_indices(
    dates: Sequence[str], start: Optional[str], end: Optional[str]
) -> List[int]:
    """Positions of ISO ``dates`` falling inside the [start, end] slice.

    ISO dates order lexicographically, so the comparison stays on the
    already-rendered strings.
    """
    lo = as_date(start).isoformat() if start else None
    hi = as_date(end).isoformat() if end else None
    return [
        position
        for position, day in enumerate(dates)
        if (lo is None or day >= lo) and (hi is None or day <= hi)
    ]


class AnalysisFacade:
    """Query front-end over one :class:`ExperimentContext`.

    A facade serves one scenario's world directly and can have sibling
    scenarios *registered* on it (:meth:`register_scenario`): each
    registered scenario keeps its own context — and therefore its own
    archive, sweep caches, and world — and queries carrying a
    ``scenario`` field are routed to the matching facade.  This is how
    one service process serves every world side by side without the
    caches ever mixing.
    """

    def __init__(self, context) -> None:
        self._context = context
        self._lock = threading.RLock()
        self._full: Optional[SweepSeries] = None
        self._recent: Optional[RecentWindowSeries] = None
        self._scenarios: Dict[str, "AnalysisFacade"] = {}

    @property
    def context(self):
        """The backing experiment context (world, engine, metrics)."""
        return self._context

    # ------------------------------------------------------------------
    # The scenario dimension
    # ------------------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        """The scenario this facade's own context serves."""
        return getattr(self._context.config, "scenario_id", "baseline")

    def scenario_ids(self) -> List[str]:
        """Every scenario this facade can answer for, own world first."""
        return [self.scenario_id] + sorted(self._scenarios)

    def register_scenario(self, context) -> "AnalysisFacade":
        """Serve another scenario's context alongside this one.

        The registered context brings its own facade (one archive/sweep
        cache per scenario); returns it for direct use.
        """
        sid = getattr(context.config, "scenario_id", "baseline")
        with self._lock:
            if sid == self.scenario_id or sid in self._scenarios:
                raise QueryError(f"scenario {sid!r} is already being served")
            facade = context.api
            self._scenarios[sid] = facade
        return facade

    def scenario_facade(self, scenario_id: str) -> "AnalysisFacade":
        """The facade serving ``scenario_id``, or a QueryError listing ids."""
        if scenario_id == self.scenario_id:
            return self
        try:
            return self._scenarios[scenario_id]
        except KeyError:
            raise QueryError(
                f"scenario {scenario_id!r} is not being served; "
                f"available: {', '.join(self.scenario_ids())}"
            ) from None

    # ------------------------------------------------------------------
    # The shared sweeps (formerly ExperimentContext.full_sweep/_run_recent)
    # ------------------------------------------------------------------

    def _kernel(self):
        """The archive query kernel when the collector is archive-backed.

        Coarse sweeps then run on per-shard summaries — no snapshot
        scatter, no world build — with the record path kept as the
        oracle (see ``tests/archive/test_kernel.py``).
        """
        collector = self._context.collector
        kernel = getattr(collector, "kernel", None)
        if kernel is None:
            return None
        return kernel

    def full_sweep(self) -> SweepSeries:
        """All full-period series, computed in one pass and cached."""
        if self._full is not None:
            return self._full
        context = self._context
        with self._lock:
            if self._full is not None:
                return self._full
            check_deadline("full_sweep")
            kernel = self._kernel()
            if kernel is not None:
                with context.metrics.phase("full_sweep") as stat:
                    records = kernel.full_sweep_records(
                        STUDY_START, STUDY_END, context.cadence_days
                    )
                    stat.snapshots += len(records)
                    merged = FullSweepReducer().merge(records)
                self._full = merged
                return self._full
            reducer = FullSweepReducer()
            with context.metrics.phase("full_sweep"):
                records = context.engine.run(
                    reducer,
                    STUDY_START,
                    STUDY_END,
                    context.cadence_days,
                    phase="full_sweep",
                )
                merged = reducer.merge(records)
            hits = sum(1 for record in records if record.label_cache_hit)
            context.metrics.record_cache(
                "epoch_labels", hits, len(records) - hits
            )
            self._full = merged
        return self._full

    def recent_window(self) -> RecentWindowSeries:
        """The conflict-window daily series bundle, cached."""
        if self._recent is not None:
            return self._recent
        context = self._context
        with self._lock:
            if self._recent is not None:
                return self._recent
            check_deadline("recent_sweep")
            from ..experiments.context import RECENT_WINDOW_START

            kernel = self._kernel()
            if kernel is not None:
                asns = context.fig4_asns()
                with context.metrics.phase("recent_sweep") as stat:
                    records = kernel.recent_records(
                        asns, RECENT_WINDOW_START, STUDY_END, 1
                    )
                    stat.snapshots += len(records)
                    merged = merge_recent_records(asns, records)
                self._recent = merged
                return self._recent
            reducer = RecentWindowReducer(
                context.fig4_asns(), context.world.sanctioned_indices
            )
            with context.metrics.phase("recent_sweep"):
                records = context.engine.run(
                    reducer,
                    RECENT_WINDOW_START,
                    STUDY_END,
                    1,
                    phase="recent_sweep",
                )
                merged = reducer.merge(records)
            hits = sum(1 for record in records if record.label_cache_hit)
            context.metrics.record_cache(
                "label_matrix", hits, len(records) - hits
            )
            self._recent = merged
        return self._recent

    def headline(self) -> Dict[str, object]:
        """The paper's headline numbers as a flat dict."""
        sweep = self.full_sweep()
        return compute_headline_stats(
            sweep.hosting_composition,
            sweep.ns_composition,
            sweep.tld_composition,
            sweep.tld_shares,
        ).as_dict()

    # ------------------------------------------------------------------
    # The unified entry point
    # ------------------------------------------------------------------

    def query(self, spec: SpecLike) -> QueryResult:
        """Execute one query spec; the single analysis entry point.

        Phase boundaries (here, the shared sweeps, and archive shard
        reads) check the remaining request budget via
        :func:`~repro.api.deadline.check_deadline`, so a query whose
        deadline has passed stops early instead of computing an answer
        nobody is waiting for.
        """
        spec = _as_spec(spec)
        check_deadline("query")
        if spec.kind == "diff":
            # Needs two worlds at once, so it runs at the routing facade.
            return QueryResult("diff", spec.to_dict(), self._diff_data(spec))
        target = self.scenario_facade(spec.scenario_id)
        if target is not self:
            return target.query(spec)
        if spec.kind == "experiment":
            return self._query_experiment(spec)
        if spec.kind == "series":
            return QueryResult("series", spec.to_dict(), self._series_data(spec))
        if spec.kind == "headline":
            return QueryResult("headline", spec.to_dict(), self.headline())
        if spec.kind == "records":
            return QueryResult("records", spec.to_dict(), self._records_data(spec))
        if spec.kind == "catalog":
            return QueryResult("catalog", spec.to_dict(), self._catalog_data())
        raise QueryError(f"unhandled query kind {spec.kind!r}")

    def query_json(self, spec: SpecLike) -> str:
        """Execute one query and return the canonical JSON text."""
        return self.query(spec).to_json()

    # ------------------------------------------------------------------
    # Per-kind execution
    # ------------------------------------------------------------------

    def _query_experiment(self, spec: QuerySpec) -> QueryResult:
        try:
            result = self._run_experiment(spec.experiment)
        except KeyError as exc:
            raise QueryError(str(exc.args[0]) if exc.args else str(exc)) from exc
        # Echo the caller's canonical spec (run_experiment builds its own).
        result.spec = spec.to_dict()
        return result

    def _run_experiment(self, experiment_id: str):
        from ..experiments.registry import run_experiment

        return run_experiment(experiment_id, self._context)

    def _diff_data(self, spec: QuerySpec) -> Dict[str, object]:
        """One experiment under ``spec.scenario`` minus it under baseline.

        Scalar ``measured`` values and equal-length numeric series
        subtract element-wise; everything non-numeric (dates, labels,
        rows) is carried from the scenario side untouched.  Both full
        payloads ride along so a consumer never needs a second query.
        """
        target = self.scenario_facade(spec.scenario_id)
        base = self.scenario_facade("baseline")
        if target is base:
            raise QueryError("diff queries need a non-baseline scenario")
        try:
            scenario_result = target._run_experiment(spec.experiment)
            check_deadline("diff_baseline")
            baseline_result = base._run_experiment(spec.experiment)
        except KeyError as exc:
            raise QueryError(str(exc.args[0]) if exc.args else str(exc)) from exc
        scenario_payload = scenario_result.as_payload()
        baseline_payload = baseline_result.as_payload()
        return {
            "experiment_id": spec.experiment,
            "scenario": spec.scenario_id,
            "baseline": "baseline",
            "title": scenario_payload.get("title"),
            "measured_delta": _scalar_deltas(
                scenario_payload.get("measured") or {},
                baseline_payload.get("measured") or {},
            ),
            "series_delta": _series_deltas(
                scenario_payload.get("series") or {},
                baseline_payload.get("series") or {},
            ),
            "scenario_result": scenario_payload,
            "baseline_result": baseline_payload,
        }

    def _composition_data(self, series) -> Dict[str, object]:
        points = series.points()
        return {
            "title": series.title,
            "dates": [point.date.isoformat() for point in points],
            "full": [point.full for point in points],
            "part": [point.part for point in points],
            "non": [point.non for point in points],
            "total": [point.total for point in points],
            "full_pct": [round(point.share("full"), 4) for point in points],
            "part_pct": [round(point.share("part"), 4) for point in points],
            "non_pct": [round(point.share("non"), 4) for point in points],
        }

    def _series_data(self, spec: QuerySpec) -> Dict[str, object]:
        name = spec.series
        if name in ("ns_composition", "hosting_composition", "tld_composition"):
            series = getattr(self.full_sweep(), name)
            data = self._composition_data(series)
        elif name == "sanctioned_composition":
            data = self._composition_data(self.recent_window().sanctioned_composition)
        elif name == "tld_shares":
            shares = self.full_sweep().tld_shares
            data = {
                "dates": [point.date.isoformat() for point in shares],
                "total": [point.total for point in shares],
                "shares_pct": {
                    tld: [round(value, 4) for value in shares.share_series(tld)]
                    for tld in shares.tlds_seen()
                },
            }
        elif name == "asn_shares":
            from ..experiments.context import FIG4_PROVIDERS

            series = self.recent_window().asn_shares
            catalog = self._context.catalog
            providers = {
                key: catalog.get(key).primary_asn for key in FIG4_PROVIDERS
            }
            data = {
                "dates": [day.isoformat() for day in series.dates()],
                "providers": {key: int(asn) for key, asn in providers.items()},
                "counts": {
                    key: series.count_series(asn)
                    for key, asn in providers.items()
                },
                "shares_pct": {
                    key: [round(value, 4) for value in series.share_series(asn)]
                    for key, asn in providers.items()
                },
            }
        elif name == "listed_counts":
            recent = self.recent_window()
            data = {
                "dates": [
                    point.date.isoformat()
                    for point in recent.sanctioned_composition.points()
                ],
                "listed": list(recent.listed_counts),
            }
        else:  # unreachable: QuerySpec validated the name
            raise QueryError(f"unknown series {name!r}")

        keep = _range_indices(data["dates"], spec.start, spec.end)
        if len(keep) != len(data["dates"]):
            data = _slice_columns(data, keep)
        data["series"] = name
        return data

    def _records_data(self, spec: QuerySpec) -> Dict[str, object]:
        date = as_date(spec.date)
        check_deadline("records_collect")
        snapshot = self._context.collector.collect(date)
        population = self._context.world.population
        matched = [
            int(index)
            for index in snapshot.measured
            if spec.tld is None
            or population.record(int(index)).name.tld == spec.tld
        ]
        offset = spec.offset or 0
        limit = DEFAULT_RECORDS_LIMIT if spec.limit is None else spec.limit
        page = matched[offset : offset + limit]
        records = []
        for index in page:
            measurement = snapshot.measurement_for(index)
            records.append(
                {
                    "index": index,
                    "domain": str(measurement.domain),
                    "domain_unicode": measurement.domain.to_unicode(),
                    "ns_names": list(measurement.ns_names),
                    "ns_addresses": [
                        format_ipv4(address)
                        for address in measurement.ns_addresses
                    ],
                    "apex_addresses": [
                        format_ipv4(address)
                        for address in measurement.apex_addresses
                    ],
                }
            )
        return {
            "date": date.isoformat(),
            "measured_total": int(len(snapshot.measured)),
            "matched_total": len(matched),
            "offset": offset,
            "limit": limit,
            "records": records,
        }

    def _catalog_data(self) -> Dict[str, object]:
        from ..experiments.registry import EXPERIMENTS, EXTENSIONS
        from .spec import QUERY_KINDS

        return {
            "schema_version": SCHEMA_VERSION,
            "kinds": list(QUERY_KINDS),
            "experiments": sorted(EXPERIMENTS),
            "extensions": sorted(EXTENSIONS),
            "series": list(SERIES_NAMES),
            "scenarios": self.scenario_ids(),
        }


def _scalar_deltas(
    scenario: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, float]:
    """Element-wise ``scenario - baseline`` over shared numeric scalars."""
    deltas: Dict[str, float] = {}
    for key in scenario:
        left, right = scenario[key], baseline.get(key)
        if isinstance(left, bool) or isinstance(right, bool):
            continue
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            deltas[key] = round(left - right, 6)
    return deltas


def _series_deltas(
    scenario: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, List[float]]:
    """Per-point deltas for shared, equal-length numeric series columns."""
    deltas: Dict[str, List[float]] = {}
    for name in scenario:
        left, right = scenario[name], baseline.get(name)
        if (
            isinstance(left, list)
            and isinstance(right, list)
            and len(left) == len(right)
            and left
            and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in left + right
            )
        ):
            deltas[name] = [round(a - b, 6) for a, b in zip(left, right)]
    return deltas


def _slice_columns(data: Dict[str, object], keep: List[int]) -> Dict[str, object]:
    """Restrict every parallel column of a series payload to ``keep``."""
    length = len(data["dates"])

    def cut(value):
        if isinstance(value, list) and len(value) == length:
            return [value[position] for position in keep]
        if isinstance(value, dict):
            return {key: cut(item) for key, item in value.items()}
        return value

    return {key: cut(value) for key, value in data.items()}


def execute_query(context, spec: SpecLike) -> QueryResult:
    """Run one query against a context through its facade."""
    return context.api.query(spec)
