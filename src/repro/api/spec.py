"""The unified query schema: :class:`QuerySpec` in, :class:`QueryResult` out.

Every consumer of the analysis layer — the CLI (``repro query``), the
HTTP service (``repro serve``), and library callers — speaks this one
vocabulary.  A spec names *what* to compute (an experiment, a series
slice, the headline numbers, a day-level record slice, or the catalog);
a result wraps the computed payload in a stable, versioned JSON
envelope.  Canonicalisation happens up front (dates to ISO, TLD filters
to lower-case A-labels), so two specs that mean the same thing share
one :meth:`QuerySpec.cache_key` — which is what the service's request
coalescing and result cache key on, and what makes the offline and
online paths byte-identical.
"""

from __future__ import annotations

import datetime as _dt
import json
import re
from typing import Dict, Optional

from ..dns.idna import encode_label
from ..errors import PunycodeError, QueryError
from ..timeline import as_date

__all__ = [
    "SCHEMA_VERSION",
    "QUERY_KINDS",
    "SERIES_NAMES",
    "QuerySpec",
    "QueryResult",
    "jsonify",
]

#: Version of the JSON envelope; bump on any incompatible payload change.
#: v2: the ``scenario`` query dimension and the ``diff`` kind.
SCHEMA_VERSION = 2

#: Everything a query can ask for.  ``diff`` computes one experiment
#: under a counterfactual scenario minus the same experiment under
#: baseline (the scenario engine's result family).
QUERY_KINDS = ("experiment", "series", "headline", "records", "catalog", "diff")

#: Named longitudinal series the ``series`` kind can slice.
SERIES_NAMES = (
    "ns_composition",
    "hosting_composition",
    "tld_composition",
    "tld_shares",
    "asn_shares",
    "sanctioned_composition",
    "listed_counts",
)

#: Spec fields accepted from dicts/JSON/query strings, in canonical order.
_FIELDS = (
    "kind", "experiment", "series", "start", "end",
    "date", "tld", "offset", "limit", "scenario",
)

#: Canonical scenario ids (mirrors repro.scenario; kept local so the
#: spec layer stays import-light).
_SCENARIO_ID = re.compile(r"^[a-z0-9][a-z0-9-]{0,63}$")


def _iso(value: object, field: str) -> str:
    """Normalise one date-ish value to its ISO string."""
    try:
        return as_date(value).isoformat()
    except Exception as exc:
        raise QueryError(f"bad {field!r} date {value!r}: {exc}") from exc


def _alabel_tld(value: str) -> str:
    """Normalise a TLD filter to its lower-case A-label (``рф`` == ``xn--p1ai``)."""
    text = str(value).strip().lstrip(".").lower()
    if not text:
        raise QueryError("empty tld filter")
    try:
        return encode_label(text)
    except PunycodeError as exc:
        raise QueryError(f"bad tld filter {value!r}: {exc}") from exc


def jsonify(value: object) -> object:
    """Recursively coerce a payload to plain JSON-serialisable types.

    Handles dates, tuples/sets, numpy scalars (anything with ``item()``),
    and stringifies non-string dict keys.
    """
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return jsonify(item())
    return str(value)


class QuerySpec:
    """One validated, canonicalised query against the analysis layer."""

    __slots__ = _FIELDS

    def __init__(
        self,
        kind: str,
        experiment: Optional[str] = None,
        series: Optional[str] = None,
        start: Optional[object] = None,
        end: Optional[object] = None,
        date: Optional[object] = None,
        tld: Optional[str] = None,
        offset: Optional[int] = None,
        limit: Optional[int] = None,
        scenario: Optional[str] = None,
    ) -> None:
        if kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {kind!r}; known: {', '.join(QUERY_KINDS)}"
            )
        self.kind = kind
        self.experiment = str(experiment) if experiment is not None else None
        self.series = str(series) if series is not None else None
        self.start = _iso(start, "start") if start is not None else None
        self.end = _iso(end, "end") if end is not None else None
        self.date = _iso(date, "date") if date is not None else None
        self.tld = _alabel_tld(tld) if tld is not None else None
        self.offset = self._count(offset, "offset")
        self.limit = self._count(limit, "limit")
        self.scenario = self._scenario(scenario)
        self._check_shape()

    @staticmethod
    def _scenario(value: Optional[str]) -> Optional[str]:
        """Canonicalise the scenario dimension.

        ``baseline`` (and absence) normalise to ``None`` so a v2 spec
        naming the baseline explicitly shares its :meth:`cache_key` —
        and therefore its cached results, coalesced requests, and
        SharedResultCache entries — with every legacy v1 payload.
        """
        if value is None:
            return None
        text = str(value).strip().lower()
        if text in ("", "baseline"):
            return None
        if not _SCENARIO_ID.match(text):
            raise QueryError(
                f"bad scenario id {value!r} "
                "(canonical ids are kebab-case: [a-z0-9][a-z0-9-]*)"
            )
        return text

    @staticmethod
    def _count(value: Optional[object], field: str) -> Optional[int]:
        if value is None:
            return None
        try:
            number = int(value)
        except (TypeError, ValueError) as exc:
            raise QueryError(f"bad {field!r} value {value!r}") from exc
        if number < 0:
            raise QueryError(f"{field} must be >= 0: {number}")
        return number

    def _check_shape(self) -> None:
        """Per-kind required/forbidden field validation."""
        if self.kind == "experiment" and not self.experiment:
            raise QueryError("experiment queries need an 'experiment' id")
        if self.kind == "series":
            if self.series not in SERIES_NAMES:
                raise QueryError(
                    f"unknown series {self.series!r}; "
                    f"known: {', '.join(SERIES_NAMES)}"
                )
            if self.start and self.end and self.start > self.end:
                raise QueryError(
                    f"inverted series range: {self.start} > {self.end}"
                )
        if self.kind == "records" and not self.date:
            raise QueryError("records queries need a 'date'")
        if self.kind == "diff":
            if not self.experiment:
                raise QueryError("diff queries need an 'experiment' id")
            if self.scenario is None:
                raise QueryError(
                    "diff queries need a non-baseline 'scenario' "
                    "(the result is scenario minus baseline)"
                )

    @property
    def scenario_id(self) -> str:
        """The effective scenario this spec targets (``baseline`` when unset)."""
        return self.scenario or "baseline"

    # ------------------------------------------------------------------
    # Construction from loose input
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QuerySpec":
        """Build a spec from a plain dict, rejecting unknown fields."""
        if not isinstance(payload, dict):
            raise QueryError(f"query spec must be an object, got {type(payload).__name__}")
        unknown = set(payload) - set(_FIELDS)
        if unknown:
            raise QueryError(f"unknown query field(s): {', '.join(sorted(unknown))}")
        if "kind" not in payload:
            raise QueryError("query spec needs a 'kind'")
        return cls(**{key: payload[key] for key in _FIELDS if key in payload})

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        """Parse a JSON object into a spec."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise QueryError(f"query spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Canonical dict: normalised values, None fields omitted."""
        return {
            field: getattr(self, field)
            for field in _FIELDS
            if getattr(self, field) is not None
        }

    def cache_key(self) -> str:
        """Stable identity two equivalent specs share (coalescing/cache key)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:
        return f"QuerySpec({self.cache_key()})"


class QueryResult:
    """The versioned envelope every query returns.

    A result either wraps an :class:`~repro.experiments.base.ExperimentResult`
    artefact (experiment queries) or carries an explicit ``data`` payload
    (series/headline/records/catalog queries).  Attribute access falls
    through to the wrapped artefact, so legacy consumers of
    ``ExperimentResult`` (``render()``, ``measured``, ``write_csv()``…)
    keep working unchanged on the uniform return type.
    """

    def __init__(
        self,
        kind: str,
        spec: Optional[Dict[str, object]] = None,
        data: Optional[Dict[str, object]] = None,
        artefact=None,
    ) -> None:
        if (data is None) == (artefact is None):
            raise QueryError("QueryResult needs exactly one of data/artefact")
        self.kind = kind
        self.spec = dict(spec) if spec is not None else {"kind": kind}
        self.schema_version = SCHEMA_VERSION
        self._data = data
        self._artefact = artefact

    @classmethod
    def from_experiment(cls, artefact) -> "QueryResult":
        """Wrap one experiment artefact in the uniform envelope."""
        spec = {"kind": "experiment", "experiment": artefact.experiment_id}
        return cls("experiment", spec, artefact=artefact)

    @property
    def artefact(self):
        """The wrapped experiment artefact, or None for data results."""
        return self._artefact

    @property
    def data(self) -> Dict[str, object]:
        """The JSON-safe payload (artefact payloads are built lazily)."""
        if self._artefact is not None:
            return self._artefact.as_payload()
        return self._data

    def to_dict(self) -> Dict[str, object]:
        """The full envelope as a plain dict."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "spec": jsonify(self.spec),
            "data": jsonify(self.data),
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, compact, ASCII).

        The service and ``repro query`` both emit exactly these bytes,
        which is what the byte-identity equivalence suite asserts.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    def __getattr__(self, name: str):
        artefact = self.__dict__.get("_artefact")
        if artefact is not None:
            return getattr(artefact, name)
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r} "
            "(and wraps no experiment artefact)"
        )

    def __repr__(self) -> str:
        return f"QueryResult({self.kind!r}, spec={self.spec})"
