"""Per-request time budgets carried through the analysis layer.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
serving layer mints one per request (from the ``X-Repro-Deadline-Ms``
header or the server default) and installs it for the duration of the
computation with :func:`deadline_scope`; the expensive phases below —
facade sweeps, day-record collection, archive shard reads — call
:func:`check_deadline` at their boundaries, so a request whose budget
has run out stops burning a worker thread at the next phase boundary
instead of computing an answer nobody is waiting for.

The scope rides a :class:`contextvars.ContextVar`, so offline callers
(``repro query`` without a deadline, library users, the sweep pipeline)
pay a single context-variable read that returns ``None`` and nothing
else.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]

#: Ceiling on per-request budgets (10 minutes); keeps one absurd header
#: from pinning a worker slot for hours.
MAX_DEADLINE_MS = 600_000


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: int) -> None:
        self.expires_at = float(expires_at)
        #: The original budget, for error messages and metrics.
        self.budget_ms = int(budget_ms)

    @classmethod
    def after_ms(cls, budget_ms: int) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now (clamped)."""
        if budget_ms < 1:
            raise DeadlineExceeded(f"deadline budget must be >= 1 ms: {budget_ms}")
        budget_ms = min(int(budget_ms), MAX_DEADLINE_MS)
        return cls(time.monotonic() + budget_ms / 1000.0, budget_ms)

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        """True once the budget has run out."""
        return time.monotonic() >= self.expires_at

    def check(self, phase: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.expired():
            where = f" at {phase}" if phase else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms} ms exceeded{where}"
            )

    def __repr__(self) -> str:
        return f"Deadline({self.budget_ms}ms, {self.remaining():.3f}s left)"


_current: "contextvars.ContextVar[Optional[Deadline]]" = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline installed for this execution context, if any."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the dynamic extent of the block.

    ``None`` is accepted and installs nothing, so call sites can pass
    an optional deadline straight through.
    """
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def check_deadline(phase: str = "") -> None:
    """Phase-boundary hook: raise if the installed deadline expired.

    A no-op (one context-variable read) when no deadline is installed,
    which is every non-serving code path.
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.check(phase)
