"""The unified, versioned analysis API.

One vocabulary for every consumer::

    from repro.api import QuerySpec, execute_query

    result = execute_query(context, QuerySpec("experiment", experiment="fig1"))
    print(result.to_json())

``repro query`` (offline) and ``repro serve`` (HTTP) both route through
:class:`~repro.api.facade.AnalysisFacade`, so the same spec produces
byte-identical JSON on either path.
"""

from .deadline import Deadline, check_deadline, current_deadline, deadline_scope
from .facade import AnalysisFacade, execute_query
from .spec import (
    QUERY_KINDS,
    SCHEMA_VERSION,
    SERIES_NAMES,
    QueryResult,
    QuerySpec,
)

__all__ = [
    "SCHEMA_VERSION",
    "QUERY_KINDS",
    "SERIES_NAMES",
    "QuerySpec",
    "QueryResult",
    "AnalysisFacade",
    "execute_query",
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]
