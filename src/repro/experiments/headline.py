"""Headline prose statistics (Sections 3.1 and 6)."""

from __future__ import annotations

from ..core.summary import compute_headline_stats
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate the paper's headline numbers from the full sweep."""
    sweep = context.api.full_sweep()
    stats = compute_headline_stats(
        sweep.hosting_composition,
        sweep.ns_composition,
        sweep.tld_composition,
        sweep.tld_shares,
    )

    result = ExperimentResult(
        "headline",
        "Headline statistics",
        "Sections 3.1 and 6 (prose)",
    )
    flat = stats.as_dict()
    result.measured = {
        "hosting_full_start_pct": flat["hosting_full_start"],
        "hosting_part_start_pct": flat["hosting_part_start"],
        "hosting_non_start_pct": flat["hosting_non_start"],
        "ns_full_start_pct": flat["ns_full_start"],
        "ns_full_end_pct": flat["ns_full_end"],
        "ns_full_change_pp": flat["ns_full_change"],
    }
    result.paper = {
        "hosting_full_start_pct": PAPER["headline"]["hosting_full_start_pct"],
        "hosting_part_start_pct": PAPER["headline"]["hosting_part_start_pct"],
        "hosting_non_start_pct": PAPER["headline"]["hosting_non_start_pct"],
        "ns_full_start_pct": PAPER["fig1"]["ns_full_start_pct"],
        "ns_full_end_pct": PAPER["fig1"]["ns_full_end_pct"],
        "ns_full_change_pp": PAPER["fig1"]["ns_full_change_pp"],
    }
    result.sections.append(
        f"top TLD shares at start: {flat['top_tld_start']}"
    )
    result.sections.append(
        f"top TLD shares at end:   {flat['top_tld_end']}"
    )
    result.sections.append(
        f"domains (scaled): {flat['domains_start']} -> {flat['domains_end']}"
    )
    return result
