"""Experiment result container and shared conventions.

Every paper artefact (figure or table) has a module exposing
``run(context) -> ExperimentResult``.  Results carry the regenerated data
(series and/or table rows), the paper's reported values for side-by-side
comparison, and a plain-text rendering.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from ..errors import AnalysisError
from .render import format_table

__all__ = ["ExperimentResult"]


class ExperimentResult:
    """The reproduced artefact for one figure or table."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        paper_reference: str,
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        #: Where in the paper the artefact lives (e.g. "Figure 1, §3.1").
        self.paper_reference = paper_reference
        #: Columnar series: name -> list of values (all the same length).
        self.series: Dict[str, List] = {}
        #: Table rows (ordered dicts of column -> value).
        self.rows: List[Dict[str, object]] = []
        #: Headline scalar observations from this run.
        self.measured: Dict[str, object] = {}
        #: The paper's reported values for the same quantities.
        self.paper: Dict[str, object] = {}
        #: Free-form rendering sections appended by the experiment.
        self.sections: List[str] = []

    def add_series(self, name: str, values: Sequence) -> None:
        """Attach one named series; lengths must agree across series."""
        values = list(values)
        for existing in self.series.values():
            if len(existing) != len(values):
                raise AnalysisError(
                    f"series {name!r} length {len(values)} != {len(existing)}"
                )
        self.series[name] = values

    def add_row(self, **columns: object) -> None:
        """Append one table row."""
        self.rows.append(dict(columns))

    def comparison_rows(self) -> List[Dict[str, object]]:
        """measured-vs-paper rows for every shared scalar key.

        Structured entries (dicts, e.g. the ``profile`` metrics block)
        are not comparable against paper scalars and are skipped here;
        :meth:`render` prints them as their own section.
        """
        rows = []
        for key in self.measured:
            if isinstance(self.measured[key], dict):
                continue
            rows.append(
                {
                    "metric": key,
                    "measured": self.measured[key],
                    "paper": self.paper.get(key, "—"),
                }
            )
        return rows

    def as_payload(self) -> Dict[str, object]:
        """The machine-readable payload (what ``to_json`` serialises).

        This is the stable per-experiment shape inside the versioned
        :class:`~repro.api.spec.QueryResult` envelope: identity fields
        plus every series column, table row, and measured/paper scalar.
        """
        from ..api.spec import jsonify

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "series": jsonify(self.series),
            "rows": jsonify(self.rows),
            "measured": jsonify(self.measured),
            "paper": jsonify(self.paper),
            "sections": list(self.sections),
        }

    def to_json(self) -> str:
        """Canonical JSON text of :meth:`as_payload`."""
        return json.dumps(
            self.as_payload(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    def write_csv(self, directory: Union[str, pathlib.Path]) -> List[pathlib.Path]:
        """Export the result as CSV files for downstream plotting.

        Writes ``<id>_series.csv`` (one column per series) and/or
        ``<id>_rows.csv`` (the table rows), plus ``<id>_comparison.csv``
        with the paper-vs-measured scalars.  Returns the written paths.
        """
        target = pathlib.Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written: List[pathlib.Path] = []

        if self.series:
            path = target / f"{self.experiment_id}_series.csv"
            columns = list(self.series)
            length = len(next(iter(self.series.values())))
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(columns)
                for row_index in range(length):
                    writer.writerow(
                        [self.series[column][row_index] for column in columns]
                    )
            written.append(path)

        if self.rows:
            path = target / f"{self.experiment_id}_rows.csv"
            columns = list(self.rows[0])
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.DictWriter(handle, fieldnames=columns)
                writer.writeheader()
                writer.writerows(self.rows)
            written.append(path)

        if self.measured:
            path = target / f"{self.experiment_id}_comparison.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["metric", "measured", "paper"])
                for row in self.comparison_rows():
                    writer.writerow([row["metric"], row["measured"], row["paper"]])
            written.append(path)

        return written

    def render(self) -> str:
        """Human-readable text output (what the benches print)."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"   ({self.paper_reference})",
            "",
        ]
        if self.rows:
            headers = list(self.rows[0])
            lines.append(
                format_table(headers, [[row.get(h, "") for h in headers] for row in self.rows])
            )
            lines.append("")
        if self.measured:
            comparison = self.comparison_rows()
            if comparison:
                lines.append("paper vs measured:")
                lines.append(
                    format_table(
                        ["metric", "measured", "paper"],
                        [
                            [row["metric"], row["measured"], row["paper"]]
                            for row in comparison
                        ],
                    )
                )
                lines.append("")
            for key, value in self.measured.items():
                if isinstance(value, dict):
                    lines.append(f"{key}:")
                    lines.extend(
                        f"  {subkey}: {subvalue}"
                        for subkey, subvalue in value.items()
                    )
                    lines.append("")
        lines.extend(self.sections)
        return "\n".join(lines)
