"""Figure 4: hosting-network shares of top ASNs through the conflict."""

from __future__ import annotations

from .base import ExperimentResult
from .context import FIG4_PROVIDERS, ExperimentContext
from .paper import PAPER
from .render import fmt_pct, sparkline

__all__ = ["run"]

_RUSSIAN_BIG4 = ("regru", "rucenter", "timeweb", "beget")


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 4: daily domain share per tracked hosting ASN."""
    series = context.api.recent_window().asn_shares
    catalog = context.catalog
    result = ExperimentResult(
        "fig4",
        "Hosting networks of .ru/.рф domains (top ASNs)",
        "Figure 4, Section 3.2",
    )
    result.add_series("date", [d.isoformat() for d in series.dates()])
    for key in FIG4_PROVIDERS:
        asn = catalog.get(key).primary_asn
        result.add_series(
            f"{key}_pct", [round(v, 2) for v in series.share_series(asn)]
        )

    first, last = series.first(), series.last()
    big4_start = sum(
        first.share(catalog.get(key).primary_asn) for key in _RUSSIAN_BIG4
    )
    big4_end = sum(
        last.share(catalog.get(key).primary_asn) for key in _RUSSIAN_BIG4
    )
    cloudflare_asn = catalog.get("cloudflare").primary_asn
    result.measured = {
        "russian_big4_start_pct": round(big4_start, 1),
        "russian_big4_end_pct": round(big4_end, 1),
        "cloudflare_pct": round(last.share(cloudflare_asn), 1),
    }
    result.paper = dict(PAPER["fig4"])

    for key in FIG4_PROVIDERS:
        provider = catalog.get(key)
        values = series.share_series(provider.primary_asn)
        result.sections.append(
            f"{provider.display:12s} AS{provider.primary_asn:<7d} "
            + sparkline(values)
            + f"  ({fmt_pct(values[0])} -> {fmt_pct(values[-1])})"
        )
    return result
