"""Figure 8: per-CA issuance timelines for Russian domains."""

from __future__ import annotations

import datetime as _dt

from ..core.issuance import issuance_timelines
from ..timeline import CERT_WINDOW_END, CERT_WINDOW_START, SANCTIONS_EFFECTIVE
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER
from .render import dot_timeline

__all__ = ["run"]


def run(context: ExperimentContext, top_k: int = 10) -> ExperimentResult:
    """Regenerate Figure 8's dot timelines from the CT monitor."""
    timelines = issuance_timelines(context.monitor(), top_k=top_k)
    result = ExperimentResult(
        "fig8",
        "CA issuance timelines for .ru/.рф certificates",
        "Figure 8, Section 4.1",
    )

    window = [
        CERT_WINDOW_START + _dt.timedelta(days=offset)
        for offset in range((CERT_WINDOW_END - CERT_WINDOW_START).days + 1)
    ]
    result.add_series("date", [d.isoformat() for d in window])
    for timeline in timelines:
        result.add_series(
            timeline.issuer,
            [1 if timeline.issued_on(date) else 0 for date in window],
        )

    # "Continuing" means sustained issuance at the end of the window;
    # isolated brand-CN leakage dots do not count (Section 4.1).
    tail_start = CERT_WINDOW_END - _dt.timedelta(days=30)
    continuing = [
        timeline.issuer
        for timeline in timelines
        if timeline.active_day_share(tail_start, CERT_WINDOW_END) >= 0.3
    ]
    stopped = [
        timeline.issuer for timeline in timelines if timeline.issuer not in continuing
    ]
    result.measured = {
        "top10": [t.issuer for t in timelines],
        "continuing_cas": sorted(continuing),
        "stopped_count_of_top10": len(stopped),
    }
    result.paper = {
        "continuing_cas": sorted(PAPER["fig8"]["continuing_cas"]),
        "stopped_count_of_top10": PAPER["fig8"]["stopped_count_of_top10"],
    }

    for timeline in timelines:
        flags = [timeline.issued_on(date) for date in window]
        result.sections.append(f"{timeline.issuer:24s} {dot_timeline(flags)}")
    result.sections.append(
        f"{'':24s} window {CERT_WINDOW_START} .. {CERT_WINDOW_END}; "
        "vertical landmarks: conflict 02-24, sanctions 03-26"
    )
    return result
