"""Extension: OFAC General License 25 (paper footnote 7).

On April 22, 2022, OFAC issued GL-25 authorising telecommunications and
Internet-based communications transactions.  The paper reports it
observed *no clear change in certificate issuance behaviour* in response.
This experiment performs that check: per-CA issuance shares in the month
before vs the three weeks after GL-25 must be statistically alike.
"""

from __future__ import annotations

import datetime as _dt

from ..core.issuance import compare_issuance_windows
from .base import ExperimentResult
from .context import ExperimentContext

__all__ = ["run", "GL25_DATE"]

GL25_DATE = _dt.date(2022, 4, 22)
_BEFORE = (_dt.date(2022, 3, 27), _dt.date(2022, 4, 21))
_AFTER = (_dt.date(2022, 4, 23), _dt.date(2022, 5, 15))


def run(context: ExperimentContext) -> ExperimentResult:
    """Compare per-CA issuance shares across the GL-25 boundary."""
    comparison = compare_issuance_windows(context.monitor(), _BEFORE, _AFTER)
    result = ExperimentResult(
        "gl25",
        "OFAC General License 25: issuance before vs after (extension)",
        "Footnote 7, Section 2",
    )
    max_delta = 0.0
    for org, (before, after) in comparison.items():
        delta = after - before
        max_delta = max(max_delta, abs(delta))
        result.add_row(
            issuer=org,
            before_pct=f"{before:.2f}%",
            after_pct=f"{after:.2f}%",
            delta_pp=f"{delta:+.2f}",
        )
    result.measured = {
        "max_share_delta_pp": round(max_delta, 2),
        "clear_change_observed": bool(max_delta > 5.0),
    }
    result.paper = {
        "max_share_delta_pp": "none reported",
        "clear_change_observed": False,
    }
    result.sections.append(
        f"windows: {_BEFORE[0]}..{_BEFORE[1]} vs {_AFTER[0]}..{_AFTER[1]} "
        f"(GL-25 issued {GL25_DATE})"
    )
    return result
