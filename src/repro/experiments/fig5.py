"""Figure 5: NS country composition of the sanctioned domains."""

from __future__ import annotations

import datetime as _dt

from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER
from .render import fmt_pct, sparkline

__all__ = ["run"]

_FEB24 = _dt.date(2022, 2, 24)
_MAR4 = _dt.date(2022, 3, 4)


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 5 from the daily conflict-window sweep."""
    recent = context.api.recent_window()
    series = recent.sanctioned_composition
    listed = recent.listed_counts
    result = ExperimentResult(
        "fig5",
        "NS country composition of sanctioned domains",
        "Figure 5, Section 3.3",
    )
    result.add_series("date", [d.isoformat() for d in series.dates()])
    for which in ("full", "part", "non"):
        result.add_series(f"{which}_pct", [round(v, 2) for v in series.shares(which)])
    result.add_series("listed", listed)

    feb24 = series.nearest(_FEB24)
    mar4 = series.nearest(_MAR4)
    result.measured = {
        "feb24_part_pct": round(feb24.share("part"), 1),
        "feb24_non_pct": round(feb24.share("non"), 1),
        "mar4_full_pct": round(mar4.share("full"), 1),
        "sanctioned_total": feb24.total,
    }
    result.paper = {
        key: PAPER["fig5"][key]
        for key in ("feb24_part_pct", "feb24_non_pct", "mar4_full_pct",
                    "sanctioned_total")
    }

    for which in ("full", "part", "non"):
        result.sections.append(
            f"{which:4s}: " + sparkline(series.shares(which))
        )
    result.sections.append("listed: " + sparkline([float(v) for v in listed]))
    return result
