"""Extension: Section 2 dataset summary, measured from the sweep.

The paper describes its dataset as 11.7 M unique domain names over 1803
days, with 13.3 k networks hosting apexes and 9.5 k hosting authoritative
DNS.  This experiment derives the same summary from the reproduction's
measurements.  Unique-domain counts scale with the population; network
counts are bounded by the size of the simulated provider market (the
catalogue holds ~40 providers, not the real Internet's thousands — a
documented substitution limit).
"""

from __future__ import annotations

from typing import Set

from ..timeline import STUDY_DAYS, STUDY_END, STUDY_START
from .base import ExperimentResult
from .context import ExperimentContext

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Measure the dataset-summary numbers from sampled snapshots."""
    world = context.world
    result = ExperimentResult(
        "dataset",
        "Dataset summary (extension)",
        "Section 2",
    )

    apex_asns: Set[int] = set()
    ns_asns: Set[int] = set()
    measured_days = 0
    for snapshot in context.collector.sweep(STUDY_START, STUDY_END, 30):
        measured_days += 1
        hosting_labels = snapshot.epoch.hosting_labels
        dns_labels = snapshot.epoch.dns_labels
        import numpy as np

        hosting_used = np.unique(snapshot.hosting_ids[snapshot.measured])
        dns_used = np.unique(snapshot.dns_ids[snapshot.measured])
        for plan_id in hosting_used:
            apex_asns.update(hosting_labels.asn_sets[int(plan_id)])
        for plan_id in dns_used:
            ns_asns.update(dns_labels.ns_asns[int(plan_id)])

    unique_domains = world.population.unique_count()
    result.add_row(metric="study days", value=STUDY_DAYS)
    result.add_row(metric="unique domains (scaled)", value=unique_domains)
    result.add_row(metric="unique apex-hosting ASNs", value=len(apex_asns))
    result.add_row(metric="unique NS-hosting ASNs", value=len(ns_asns))
    result.add_row(
        metric="sanctioned domains", value=len(world.sanctions.all_domains())
    )

    scale = context.config.scale
    result.measured = {
        "study_days": STUDY_DAYS,
        "unique_domains_scaled_up": int(unique_domains * scale),
        "apex_asns": len(apex_asns),
        "ns_asns": len(ns_asns),
        "sanctioned_domains": len(world.sanctions.all_domains()),
        "ns_asns_fewer_than_apex_asns": len(ns_asns) < len(apex_asns),
    }
    result.paper = {
        "study_days": 1803,
        "unique_domains_scaled_up": 11_700_000,
        "apex_asns": "13,300 (bounded by catalogue size here)",
        "ns_asns": "9,500 (bounded by catalogue size here)",
        "sanctioned_domains": 107,
        # The paper too sees fewer DNS-hosting networks than web-hosting.
        "ns_asns_fewer_than_apex_asns": True,
    }
    return result
