"""Plain-text rendering helpers for experiment output."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "sparkline", "fmt_pct", "fmt_count", "dot_timeline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def fmt_pct(value: float, digits: int = 1) -> str:
    """Format a percentage value."""
    return f"{value:.{digits}f}%"


def fmt_count(value: int) -> str:
    """Format a count with thousands separators."""
    return f"{value:,}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    header_cells = [str(cell) for cell in headers]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: List[str]) -> str:
        return "  ".join(
            cell.ljust(widths[column]) for column, cell in enumerate(cells)
        ).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [fmt_row(header_cells), separator]
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_CHARS[0] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(
        _SPARK_CHARS[int(round((value - lo) * scale))] for value in values
    )


def dot_timeline(flags: Sequence[bool], on: str = "●", off: str = "·") -> str:
    """Figure-8 style dot timeline (one char per sampled day)."""
    return "".join(on if flag else off for flag in flags)
