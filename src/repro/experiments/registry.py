"""The experiment registry: every paper artefact, one place."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import ExperimentResult
from .context import ExperimentContext
from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8
from . import ext_concentration, ext_countries, ext_dataset, ext_gl25, google, headline, table1, table2, trustedca

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "run_all"]

#: Paper artefacts: experiment id -> runner.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table1": table1.run,
    "table2": table2.run,
    "trustedca": trustedca.run,
    "google": google.run,
    "headline": headline.run,
}

#: Beyond-the-paper analyses (discussion/footnote claims, quantified).
EXTENSIONS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "concentration": ext_concentration.run,
    "gl25": ext_gl25.run,
    "dataset": ext_dataset.run,
    "countries": ext_countries.run,
}


def run_experiment(
    experiment_id: str, context: ExperimentContext
) -> ExperimentResult:
    """Run one experiment (paper artefact or extension) by id."""
    runner = EXPERIMENTS.get(experiment_id) or EXTENSIONS.get(experiment_id)
    if runner is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)} + {sorted(EXTENSIONS)}"
        )
    result = runner(context)
    if getattr(context, "profile", False):
        result.measured["profile"] = context.metrics.summary()
    return result


def run_all(
    context: ExperimentContext, include_extensions: bool = False
) -> List[ExperimentResult]:
    """Run every experiment against one shared context."""
    runners = list(EXPERIMENTS.values())
    if include_extensions:
        runners.extend(EXTENSIONS.values())
    return [runner(context) for runner in runners]
