"""The experiment registry: every paper artefact, one place, one shape.

Every registered runner has the uniform signature ``run(context) ->
QueryResult``: the per-figure modules still build their
:class:`~repro.experiments.base.ExperimentResult` artefacts internally,
but the registry normalises each into the versioned
:class:`~repro.api.spec.QueryResult` envelope, so every experiment is
machine-readable (``result.to_json()``) and servable through the
unified query API.  Attribute access on a :class:`QueryResult` falls
through to the wrapped artefact, so ``render()``/``measured``/CSV
export keep working on the uniform return type.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..api.spec import QueryResult
from .context import ExperimentContext
from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8
from . import ext_concentration, ext_countries, ext_dataset, ext_gl25, google, headline, table1, table2, trustedca

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "run_all"]


#: Experiments that need the certificate simulation (skipped by
#: :func:`run_all` on PKI-less worlds, e.g. archive-backed contexts).
_NEEDS_PKI = frozenset(
    {"fig8", "table1", "table2", "trustedca", "concentration", "gl25"}
)


def _uniform(
    experiment_id: str, runner
) -> Callable[[ExperimentContext], QueryResult]:
    """Normalise one artefact builder to ``run(context) -> QueryResult``."""

    def run(context: ExperimentContext) -> QueryResult:
        return QueryResult.from_experiment(runner(context))

    run.experiment_id = experiment_id
    run.requires_pki = experiment_id in _NEEDS_PKI
    run.__doc__ = runner.__doc__
    return run


#: Paper artefacts: experiment id -> uniform runner.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], QueryResult]] = {
    experiment_id: _uniform(experiment_id, module.run)
    for experiment_id, module in {
        "fig1": fig1,
        "fig2": fig2,
        "fig3": fig3,
        "fig4": fig4,
        "fig5": fig5,
        "fig6": fig6,
        "fig7": fig7,
        "fig8": fig8,
        "table1": table1,
        "table2": table2,
        "trustedca": trustedca,
        "google": google,
        "headline": headline,
    }.items()
}

#: Beyond-the-paper analyses (discussion/footnote claims, quantified).
EXTENSIONS: Dict[str, Callable[[ExperimentContext], QueryResult]] = {
    experiment_id: _uniform(experiment_id, module.run)
    for experiment_id, module in {
        "concentration": ext_concentration,
        "gl25": ext_gl25,
        "dataset": ext_dataset,
        "countries": ext_countries,
    }.items()
}


def run_experiment(
    experiment_id: str, context: ExperimentContext
) -> QueryResult:
    """Run one experiment (paper artefact or extension) by id."""
    runner = EXPERIMENTS.get(experiment_id) or EXTENSIONS.get(experiment_id)
    if runner is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)} + {sorted(EXTENSIONS)}"
        )
    result = runner(context)
    if getattr(context, "profile", False):
        result.measured["profile"] = context.metrics.summary()
    return result


def run_all(
    context: ExperimentContext, include_extensions: bool = False
) -> List[QueryResult]:
    """Run every experiment a context's world can answer.

    PKI-dependent artefacts are skipped on worlds built without the
    certificate simulation (``repro bundle --no-pki`` and every
    archive-backed context, since archives hold DNS measurements only).
    """
    runners = list(EXPERIMENTS.values())
    if include_extensions:
        runners.extend(EXTENSIONS.values())
    if context.world.pki is None:
        runners = [runner for runner in runners if not runner.requires_pki]
    return [runner(context) for runner in runners]
