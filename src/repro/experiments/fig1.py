"""Figure 1: country composition of ``.ru``/``.рф`` DNS infrastructure."""

from __future__ import annotations

from ..timeline import STUDY_END, STUDY_START
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER
from .render import fmt_pct, sparkline

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 1 from a full-period sweep."""
    series = context.api.full_sweep().ns_composition
    result = ExperimentResult(
        "fig1",
        "Country composition of name-server infrastructure",
        "Figure 1, Section 3.1",
    )
    result.add_series("date", [d.isoformat() for d in series.dates()])
    result.add_series("full_pct", [round(v, 2) for v in series.shares("full")])
    result.add_series("part_pct", [round(v, 2) for v in series.shares("part")])
    result.add_series("non_pct", [round(v, 2) for v in series.shares("non")])
    result.add_series("domains", series.totals())

    first = series.nearest(STUDY_START)
    last = series.nearest(STUDY_END)
    result.measured = {
        "ns_full_start_pct": round(first.share("full"), 1),
        "ns_full_end_pct": round(last.share("full"), 1),
        "ns_full_change_pp": round(last.share("full") - first.share("full"), 1),
        "domains_start": first.total,
    }
    result.paper = dict(PAPER["fig1"])

    result.sections.append(
        "full: " + sparkline(series.shares("full"))
        + f"  ({fmt_pct(first.share('full'))} -> {fmt_pct(last.share('full'))})"
    )
    result.sections.append(
        "part: " + sparkline(series.shares("part"))
        + f"  ({fmt_pct(first.share('part'))} -> {fmt_pct(last.share('part'))})"
    )
    result.sections.append(
        "non:  " + sparkline(series.shares("non"))
        + f"  ({fmt_pct(first.share('non'))} -> {fmt_pct(last.share('non'))})"
    )
    result.sections.append("#domains: " + sparkline([float(t) for t in series.totals()]))
    return result
