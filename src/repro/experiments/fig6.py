"""Figure 6: domain movement in Amazon's AS16509."""

from __future__ import annotations

import datetime as _dt

from ..core.movement import analyze_movement
from ..timeline import STUDY_END
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]

_FROM = _dt.date(2022, 3, 8)


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 6: Amazon AS16509, 2022-03-08 vs 2022-05-25."""
    asn = context.world.catalog.get("amazon").primary_asn
    report = analyze_movement(context.collector, asn, _FROM, STUDY_END)
    registry = context.world.catalog.as_registry()

    result = ExperimentResult(
        "fig6",
        f"Russian domain movement in Amazon AS{asn}",
        "Figure 6, Section 3.4",
    )
    result.add_row(category="in AS on 2022-03-08", count=report.original)
    result.add_row(category="remained", count=report.remained)
    result.add_row(category="relocated to another AS", count=report.relocated)
    result.add_row(category="registration expired", count=report.expired)
    result.add_row(category="inflow: relocated in", count=report.inflow_relocated)
    result.add_row(category="inflow: newly registered", count=report.inflow_new)

    result.measured = {
        "remained_share": round(report.remained_share, 2),
        "relocated_share": round(report.relocated_share, 2),
        "inflow_new": report.inflow_new,
        "inflow_relocated": report.inflow_relocated,
    }
    result.paper = {
        "remained_share": PAPER["fig6"]["remained_share"],
        "relocated_share": PAPER["fig6"]["relocated_share"],
        "inflow_new": f'{PAPER["fig6"]["inflow_new"]} (real scale)',
        "inflow_relocated": f'{PAPER["fig6"]["inflow_relocated"]} (real scale)',
    }

    destinations = ", ".join(
        f"{registry.name_of(dest)} ({count})"
        for dest, count in report.top_destinations(4)
    )
    result.sections.append(f"relocation destinations: {destinations or 'none'}")

    # Footnote 10: whois the newly registered arrivals; registrant data is
    # only disclosed for ~1/6 of lookups.
    whois = context.world.whois
    disclosed = [
        (name, record.registrant)
        for name in report.inflow_new_names
        for record in [whois.lookup(name)]
        if record.registrant is not None
    ]
    result.sections.append(
        f"whois on newly registered arrivals: {len(report.inflow_new_names)} "
        f"queried, registrant disclosed for {len(disclosed)} "
        "(paper: registrant data for ~1/6 of queried names)"
    )
    return result
