"""Figure 3: top TLDs used by authoritative name servers."""

from __future__ import annotations

from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER
from .render import fmt_pct, sparkline

__all__ = ["run"]

_DISPLAY = {"xn--p1ai": "рф"}


def run(context: ExperimentContext, top_k: int = 5) -> ExperimentResult:
    """Regenerate Figure 3 (top-5 NS TLD shares) from the full sweep."""
    shares = context.api.full_sweep().tld_shares
    result = ExperimentResult(
        "fig3",
        f"Top {top_k} TLDs of authoritative NS names",
        "Figure 3, Section 3.1",
    )
    top = shares.top_tlds(top_k)
    result.add_series("date", [p.date.isoformat() for p in shares])
    for tld in top:
        result.add_series(
            f"{_DISPLAY.get(tld, tld)}_pct",
            [round(v, 2) for v in shares.share_series(tld)],
        )

    first, last = shares.first(), shares.last()
    result.measured = {
        "top_tlds": [_DISPLAY.get(tld, tld) for tld in top],
        "end": {
            _DISPLAY.get(tld, tld): round(last.share(tld), 1) for tld in top
        },
        "start": {
            _DISPLAY.get(tld, tld): round(first.share(tld), 1) for tld in top
        },
        "total_tlds": len(shares.tlds_seen()),
    }
    result.paper = {
        "top_tlds": ["ru", "com", "pro", "org", "net"],
        "end": PAPER["fig3"]["end"],
        "start": PAPER["fig3"]["start"],
        "total_tlds": PAPER["fig3"]["total_tlds"],
    }

    for tld in top:
        label = _DISPLAY.get(tld, tld)
        result.sections.append(
            f".{label:10s} " + sparkline(shares.share_series(tld))
            + f"  ({fmt_pct(first.share(tld))} -> {fmt_pct(last.share(tld))})"
        )
    return result
