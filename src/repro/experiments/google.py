"""Section 3.4 (text): domain movement around Google's ASNs."""

from __future__ import annotations

import datetime as _dt

from ..core.movement import analyze_movement
from ..timeline import STUDY_END
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]

_FROM = _dt.date(2022, 3, 10)


def run(context: ExperimentContext) -> ExperimentResult:
    """Google AS15169 movement, including the intra-Google AS396982 shift."""
    catalog = context.world.catalog
    google = catalog.get("google")
    as_main, as_cloud = google.asns
    report = analyze_movement(context.collector, as_main, _FROM, STUDY_END)

    result = ExperimentResult(
        "google",
        f"Russian domain movement in Google AS{as_main}",
        "Section 3.4 (Google)",
    )
    result.add_row(category="in AS on 2022-03-10", count=report.original)
    result.add_row(category="remained", count=report.remained)
    result.add_row(category="relocated (any destination)", count=report.relocated)
    result.add_row(
        category=f"relocated intra-Google (AS{as_cloud})",
        count=report.relocation_destinations.get(as_cloud, 0),
    )
    result.add_row(category="inflow: relocated in", count=report.inflow_relocated)
    result.add_row(category="inflow: newly registered", count=report.inflow_new)

    intra = report.destination_share(as_cloud)
    result.measured = {
        "relocated_share": round(report.relocated_share, 3),
        "intra_google_share_of_relocated": round(intra, 2),
        "inflow_relocated": report.inflow_relocated,
        "inflow_new": report.inflow_new,
    }
    result.paper = {
        "relocated_share": PAPER["google"]["relocated_share"],
        "intra_google_share_of_relocated": PAPER["google"][
            "intra_google_share_of_relocated"
        ],
        "inflow_relocated": f'{PAPER["google"]["inflow_relocated"]} (real scale)',
        "inflow_new": f'{PAPER["google"]["inflow_new"]} (real scale)',
    }
    return result
