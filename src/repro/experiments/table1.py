"""Table 1: issuing activity of CAs in the three 2022 phases."""

from __future__ import annotations

from ..core.issuance import daily_issuance_average, issuance_by_phase, top_issuers_table
from ..timeline import Phase
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Table 1 from the CT monitor."""
    phases = issuance_by_phase(context.monitor())
    table = top_issuers_table(phases, k=3)
    averages = daily_issuance_average(phases)

    result = ExperimentResult(
        "table1",
        "Issuing activity of CAs per phase",
        "Table 1, Section 4.1",
    )
    for phase in (Phase.PRE_CONFLICT, Phase.PRE_SANCTIONS, Phase.POST_SANCTIONS):
        for issuer, count, share in table[phase]:
            result.add_row(
                phase=str(phase),
                issuer=issuer,
                certs=count,
                share=f"{share:.2f}%",
            )

    measured_shares = {
        str(phase): {issuer: round(share, 2) for issuer, _, share in rows}
        for phase, rows in table.items()
    }
    result.measured = {
        "shares": measured_shares,
        "daily_avg": {
            str(phase): round(avg, 1) for phase, avg in averages.items()
        },
    }
    result.paper = {
        "shares": PAPER["table1"],
        "daily_avg": {
            "pre-conflict": f'{PAPER["issuance_rate"]["pre_conflict_per_day"]} (real scale)',
            "pre-sanctions": f'{PAPER["issuance_rate"]["pre_sanctions_per_day"]} (real scale)',
            "post-sanctions": f'{PAPER["issuance_rate"]["post_sanctions_per_day"]} (real scale)',
        },
    }
    return result
