"""Extension: per-country hosting shifts ("flight to Russia and the NL").

Section 3.2 attributes post-invasion hosting movement to "flight from the
US and other Western countries to a combination of Russia and the
Netherlands".  This experiment measures per-country hosting presence
through the conflict window.
"""

from __future__ import annotations

import datetime as _dt

from ..core.countrydist import collect_country_shares
from ..timeline import STUDY_END
from .base import ExperimentResult
from .context import ExperimentContext
from .render import fmt_pct, sparkline

__all__ = ["run"]

_WINDOW_START = _dt.date(2022, 2, 22)
_TRACKED = ("RU", "US", "DE", "NL", "SE", "FR")


def run(context: ExperimentContext) -> ExperimentResult:
    """Per-country hosting shares, 2022-02-22 .. 2022-05-25, daily."""
    snapshots = context.collector.sweep(_WINDOW_START, STUDY_END, 1)
    series = collect_country_shares(snapshots, kind="hosting")

    result = ExperimentResult(
        "countries",
        "Hosting presence by country through the conflict (extension)",
        "Section 3.2 (prose), quantified",
    )
    result.add_series("date", [p.date.isoformat() for p in series])
    for country in _TRACKED:
        result.add_series(
            f"{country}_pct", [round(v, 2) for v in series.share_series(country)]
        )

    result.measured = {
        "ru_change_pp": round(series.net_change("RU"), 2),
        "nl_change_pp": round(series.net_change("NL"), 2),
        "us_change_pp": round(series.net_change("US"), 2),
        "de_change_pp": round(series.net_change("DE"), 2),
    }
    result.paper = {
        "ru_change_pp": "positive (flight to Russia)",
        "nl_change_pp": "positive (flight to the Netherlands)",
        "us_change_pp": "negative (Western providers shunned/left)",
        "de_change_pp": "negative (Sedo and Hetzner exits)",
    }

    for country in _TRACKED:
        values = series.share_series(country)
        result.sections.append(
            f"{country}: " + sparkline(values)
            + f"  ({fmt_pct(values[0])} -> {fmt_pct(values[-1])})"
        )
    return result
