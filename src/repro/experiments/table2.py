"""Table 2: revocation activity of the CAs with the most revocations."""

from __future__ import annotations

from ..core.revocation import analyze_revocations
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]


def run(context: ExperimentContext, top_k: int = 5) -> ExperimentResult:
    """Regenerate Table 2 from the CT monitor plus CRL/OCSP state."""
    pki = context.world.pki
    monitor = context.monitor()
    sanctioned = context.world.sanctions.all_domains()
    table = analyze_revocations(
        monitor.store,
        pki.authorities(),
        sanctioned,
    )

    result = ExperimentResult(
        "table2",
        "Revocation activity by CA (all vs sanctioned domains)",
        "Table 2, Section 4.2",
    )
    top = table.top_by_revocations(top_k)
    for row in top:
        result.add_row(
            issuer=row.issuer,
            issued=row.issued,
            revoked=row.revoked,
            revoked_pct=f"{row.nonsanctioned_revocation_rate:.2f}%",
            sanc_issued=row.sanctioned_issued,
            sanc_revoked=row.sanctioned_revoked,
            sanc_revoked_pct=f"{row.sanctioned_revocation_rate:.2f}%",
        )

    measured = {}
    for row in top:
        measured[row.issuer] = {
            # Non-sanctioned rate: the comparable number at reproduction
            # scale (the sanctioned stream is relatively oversampled).
            "revoked_pct": round(row.nonsanctioned_revocation_rate, 2),
            "sanctioned_revoked_pct": round(row.sanctioned_revocation_rate, 2),
        }
    result.measured = {
        "rates": measured,
        "full_revokers": sorted(
            row.issuer
            for row in top
            if row.sanctioned_issued and row.sanctioned_revoked == row.sanctioned_issued
        ),
    }
    result.paper = {
        "rates": {
            issuer: {
                "revoked_pct": values["revoked_pct"],
                "sanctioned_revoked_pct": values["sanctioned_revoked_pct"],
            }
            for issuer, values in PAPER["table2"].items()
        },
        "full_revokers": ["DigiCert", "Sectigo"],
    }
    result.sections.append(
        "note: sanctioned revocation rates exceed all-domain rates for every CA,"
    )
    result.sections.append(
        "as the paper observes; DigiCert and Sectigo revoke 100% of sanctioned certs."
    )
    return result
