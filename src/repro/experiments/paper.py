"""The paper's reported values, for side-by-side comparison.

Numbers quoted directly from Jonker et al., IMC '22.  Experiments attach
the relevant subset to their results so renders and EXPERIMENTS.md can
show paper-vs-measured without hunting through the text.
"""

from __future__ import annotations

PAPER = {
    "fig1": {
        "ns_full_start_pct": 67.0,
        "ns_full_end_pct": 73.9,
        "ns_full_change_pp": 6.9,
        "domains_start": 4_950_000,  # "just under 5 M"
    },
    "fig2": {
        "tld_full_change_pp": -6.3,
        "tld_part_change_pp": +7.9,
        "conflict_full_bump_pp": +0.2,
        "conflict_part_bump_pp": +0.5,
    },
    "fig3": {
        "end": {"ru": 78.3, "com": 24.7, "pro": 12.4, "org": 9.2, "net": 7.3},
        "start": {"com": 17.2, "pro": 8.8, "org": 8.2, "net": 9.1},
        "total_tlds": 270,
    },
    "fig4": {
        "russian_big4_start_pct": 38.0,
        "russian_big4_end_pct": 39.0,
        "cloudflare_pct": 7.0,
    },
    "fig5": {
        "feb24_part_pct": 34.0,
        "feb24_non_pct": 5.2,
        "mar4_full_pct": 93.8,
        "sanctioned_total": 107,
        "hosted_fully_russian_pre_conflict": 101,
    },
    "fig6": {  # Amazon AS16509, 2022-03-08 vs 2022-05-25
        "remained_share": 0.43,
        "relocated_share": 0.57,
        "inflow_new": 574,
        "inflow_relocated": 988,
    },
    "fig7": {  # Sedo AS47846
        "original": 164_000,
        "relocated_share": 0.98,
        "remained": 2_700,
        "inflow": 311,
    },
    "google": {  # Section 3.4 text
        "original": 17_700,
        "relocated_share": 0.571,
        "intra_google_share_of_relocated": 0.752,
        "inflow_relocated": 187,
        "inflow_new": 184,
    },
    "cloudflare": {  # Section 3.4 text
        "original": 315_000,
        "remained_share": 0.94,
        "inflow": 34_000,
    },
    "netnod": {"domains": 76_000, "date": "2022-03-03"},
    "table1": {
        "pre-conflict": {
            "Let's Encrypt": 91.58, "DigiCert": 3.40, "cPanel": 2.13,
            "Other CAs": 2.89,
        },
        "pre-sanctions": {
            "Let's Encrypt": 98.06, "GlobalSign": 0.76, "cPanel": 0.34,
            "Other CAs": 0.84,
        },
        "post-sanctions": {
            "Let's Encrypt": 99.23, "GlobalSign": 0.52, "Google Trust Services": 0.24,
            "Other CAs": 0.01,
        },
    },
    "issuance_rate": {
        "pre_conflict_per_day": 130_000,
        "pre_sanctions_per_day": 115_000,
        "post_sanctions_per_day": 115_000,
    },
    "fig8": {
        "continuing_cas": ("Let's Encrypt", "GlobalSign", "Google Trust Services"),
        "stopped_count_of_top10": 6,
    },
    "table2": {
        "Let's Encrypt": {
            "issued": 15_000_000, "revoked_pct": 0.06,
            "sanctioned_issued": 16_000, "sanctioned_revoked_pct": 1.19,
        },
        "DigiCert": {
            "issued": 247_000, "revoked_pct": 0.80,
            "sanctioned_issued": 308, "sanctioned_revoked_pct": 100.0,
        },
        "GlobalSign": {
            "issued": 95_000, "revoked_pct": 1.68,
            "sanctioned_issued": 905, "sanctioned_revoked_pct": 2.54,
        },
        "Sectigo": {
            "issued": 96_000, "revoked_pct": 5.15,
            "sanctioned_issued": 164, "sanctioned_revoked_pct": 100.0,
        },
        "ZeroSSL": {
            "issued": 56_000, "revoked_pct": 0.30,
            "sanctioned_issued": 82, "sanctioned_revoked_pct": 2.43,
        },
    },
    "trustedca": {
        "certificates": 170,
        "ru_domains": 130,
        "rf_domains": 2,
        "sanctioned_secured": 36,
        "sanctioned_coverage_pct": 34.0,
    },
    "headline": {
        "hosting_full_start_pct": 71.0,
        "hosting_part_start_pct": 0.19,
        "hosting_non_start_pct": 28.81,
    },
}
