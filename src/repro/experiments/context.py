"""Shared experiment context: one world, cached sweeps and datasets.

Several figures consume the same five-year sweep; the context runs that
sweep once and accumulates every longitudinal series in a single pass.
Likewise for the recent (conflict-window) daily sweep, the CT monitor,
and the scan dataset.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.composition import CompositionSeries, CompositionPoint
from ..core.labels import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
    snapshot_ns_tld_labels,
)
from ..core.tlddep import TldSharePoint, TldShareSeries
from ..core.topasn import AsnSharePoint, AsnShareSeries
from ..ctlog.monitor import CtMonitor
from ..errors import AnalysisError
from ..measurement.fast import FastCollector
from ..scanner.cuids import UniversalScanDataset
from ..scanner.tls import TlsScanner
from ..sim.conflict import ConflictScenarioConfig, build_scenario
from ..sim.world import World
from ..timeline import STUDY_END, STUDY_START

__all__ = ["SweepSeries", "ExperimentContext"]

#: The hosting networks Figure 4 tracks (provider key order).
FIG4_PROVIDERS = (
    "regru", "rucenter", "timeweb", "beget",
    "amazon", "sedo", "cloudflare", "serverel",
)
RECENT_WINDOW_START = _dt.date(2022, 2, 22)


class SweepSeries:
    """Every longitudinal series the five-year sweep produces."""

    def __init__(self) -> None:
        self.ns_composition = CompositionSeries("NS country composition")
        self.hosting_composition = CompositionSeries("Hosting country composition")
        self.tld_composition = CompositionSeries("NS TLD dependency")
        self.tld_shares = TldShareSeries()


class ExperimentContext:
    """Builds (or wraps) a world and caches every shared computation."""

    def __init__(
        self,
        world: Optional[World] = None,
        config: Optional[ConflictScenarioConfig] = None,
        cadence_days: int = 7,
    ) -> None:
        if cadence_days < 1:
            raise AnalysisError(f"cadence must be >= 1 day: {cadence_days}")
        self.config = config or ConflictScenarioConfig()
        self.world = world if world is not None else build_scenario(self.config)
        self.collector = FastCollector(self.world)
        self.cadence_days = cadence_days
        self._full: Optional[SweepSeries] = None
        self._recent_asn: Optional[AsnShareSeries] = None
        self._recent_sanctioned: Optional[CompositionSeries] = None
        self._recent_listed_counts: Optional[List[int]] = None
        self._monitor: Optional[CtMonitor] = None
        self._scans: Optional[UniversalScanDataset] = None

    # ------------------------------------------------------------------
    # The five-year sweep (Figures 1-3, headline stats)
    # ------------------------------------------------------------------

    def full_sweep(self) -> SweepSeries:
        """All full-period series, computed in one pass and cached."""
        if self._full is not None:
            return self._full
        series = SweepSeries()
        for snapshot in self.collector.sweep(
            STUDY_START, STUDY_END, self.cadence_days
        ):
            ns_labels = snapshot_ns_geo_labels(snapshot)
            host_labels = snapshot_hosting_geo_labels(snapshot)
            tld_labels = snapshot_ns_tld_labels(snapshot)
            series.ns_composition.add_counts(
                snapshot.date,
                int((ns_labels == LABEL_FULL).sum()),
                int((ns_labels == LABEL_PART).sum()),
                int((ns_labels == LABEL_NON).sum()),
            )
            series.hosting_composition.add_counts(
                snapshot.date,
                int((host_labels == LABEL_FULL).sum()),
                int((host_labels == LABEL_PART).sum()),
                int((host_labels == LABEL_NON).sum()),
            )
            series.tld_composition.add_counts(
                snapshot.date,
                int((tld_labels == LABEL_FULL).sum()),
                int((tld_labels == LABEL_PART).sum()),
                int((tld_labels == LABEL_NON).sum()),
            )
            labels = snapshot.epoch.dns_labels
            plan_counts = np.bincount(
                snapshot.dns_ids[snapshot.measured],
                minlength=labels.tld_membership.shape[0],
            )
            per_tld = plan_counts @ labels.tld_membership
            series.tld_shares.add(
                TldSharePoint(
                    snapshot.date,
                    int(len(snapshot.measured)),
                    {
                        tld: int(per_tld[col])
                        for col, tld in enumerate(labels.tld_names)
                        if per_tld[col] > 0
                    },
                )
            )
        self._full = series
        return series

    # ------------------------------------------------------------------
    # The recent daily window (Figures 4 and 5)
    # ------------------------------------------------------------------

    def fig4_asns(self) -> List[int]:
        """The tracked hosting ASNs, Figure 4's legend order."""
        return [
            self.world.catalog.get(key).primary_asn for key in FIG4_PROVIDERS
        ]

    def _run_recent(self) -> None:
        asns = self.fig4_asns()
        asn_series = AsnShareSeries(asns)
        sanctioned_series = CompositionSeries("Sanctioned NS composition")
        listed_counts: List[int] = []
        sanctioned = self.world.sanctioned_indices

        matrix_cache: Dict[int, np.ndarray] = {}
        for snapshot in self.collector.sweep(RECENT_WINDOW_START, STUDY_END, 1):
            labels = snapshot.epoch.hosting_labels
            key = id(labels)
            matrix = matrix_cache.get(key)
            if matrix is None:
                matrix = np.zeros((len(labels.asn_sets), len(asns)), dtype=bool)
                for plan_id, plan_asns in enumerate(labels.asn_sets):
                    for col, asn in enumerate(asns):
                        matrix[plan_id, col] = asn in plan_asns
                matrix_cache[key] = matrix
            plan_counts = np.bincount(
                snapshot.hosting_ids[snapshot.measured], minlength=matrix.shape[0]
            )
            per_asn = plan_counts @ matrix
            asn_series.add(
                AsnSharePoint(
                    snapshot.date,
                    int(len(snapshot.measured)),
                    {asn: int(per_asn[col]) for col, asn in enumerate(asns)},
                )
            )

            subset = snapshot.subset(sanctioned)
            ns_labels = snapshot_ns_geo_labels(snapshot, subset)
            sanctioned_series.add_counts(
                snapshot.date,
                int((ns_labels == LABEL_FULL).sum()),
                int((ns_labels == LABEL_PART).sum()),
                int((ns_labels == LABEL_NON).sum()),
            )
            listed_counts.append(
                len(self.world.sanctions.domains_listed_as_of(snapshot.date))
            )

        self._recent_asn = asn_series
        self._recent_sanctioned = sanctioned_series
        self._recent_listed_counts = listed_counts

    def recent_asn_shares(self) -> AsnShareSeries:
        """Figure 4's daily per-ASN shares."""
        if self._recent_asn is None:
            self._run_recent()
        assert self._recent_asn is not None
        return self._recent_asn

    def recent_sanctioned_composition(self) -> CompositionSeries:
        """Figure 5's daily sanctioned NS composition."""
        if self._recent_sanctioned is None:
            self._run_recent()
        assert self._recent_sanctioned is not None
        return self._recent_sanctioned

    def recent_listed_counts(self) -> List[int]:
        """Figure 5's black curve: domains listed as of each day."""
        if self._recent_listed_counts is None:
            self._run_recent()
        assert self._recent_listed_counts is not None
        return self._recent_listed_counts

    # ------------------------------------------------------------------
    # PKI datasets (Figure 8, Tables 1-2, §4.3)
    # ------------------------------------------------------------------

    def _require_pki(self):
        if self.world.pki is None:
            raise AnalysisError(
                "this experiment needs the PKI simulation "
                "(build the scenario with with_pki=True)"
            )
        return self.world.pki

    def monitor(self) -> CtMonitor:
        """Censys-style CT monitor over the study TLDs (cached)."""
        if self._monitor is None:
            pki = self._require_pki()
            monitor = CtMonitor(
                pki.logs,
                matcher=lambda cert: cert.secures_tld(("ru", "xn--p1ai")),
            )
            monitor.poll()
            self._monitor = monitor
        return self._monitor

    def scans(
        self,
        start: _dt.date = _dt.date(2022, 3, 1),
        end: _dt.date = _dt.date(2022, 5, 15),
        step: int = 7,
    ) -> UniversalScanDataset:
        """Accumulated CUIDS scans over the Russian-CA window (cached)."""
        if self._scans is None:
            pki = self._require_pki()
            scanner = TlsScanner(pki.serving_view(self.world))
            dataset = UniversalScanDataset()
            dataset.run_sweeps(scanner, start, end, step)
            self._scans = dataset
        return self._scans
