"""Shared experiment context: one world, cached sweeps and datasets.

Several figures consume the same five-year sweep; the context runs that
sweep once — through the parallel sweep engine — and accumulates every
longitudinal series in a single pass.  Likewise for the recent
(conflict-window) daily sweep, the CT monitor, and the scan dataset.
Every expensive phase is instrumented in :attr:`ExperimentContext.metrics`.

A context can also be **archive-backed**: given a persistent measurement
archive (see :mod:`repro.archive`) whose scenario fingerprint matches the
config, sweeps replay stored day shards through the identical reducers
instead of re-deriving world days, so experiments become disk reads.
"""

from __future__ import annotations

import datetime as _dt
import threading
import warnings
from typing import List, Optional, Union

from ..core.reducers import RecentWindowSeries, SweepSeries
from ..core.composition import CompositionSeries
from ..core.topasn import AsnShareSeries
from ..ctlog.monitor import CtMonitor
from ..errors import AnalysisError
from ..measurement.fast import FastCollector
from ..measurement.metrics import SweepMetrics
from ..measurement.sweep import SweepEngine
from ..scanner.cuids import UniversalScanDataset
from ..scanner.tls import TlsScanner
from ..sim.conflict import ConflictScenarioConfig, build_scenario
from ..sim.world import World

__all__ = ["SweepSeries", "ExperimentContext"]

#: The hosting networks Figure 4 tracks (provider key order).
FIG4_PROVIDERS = (
    "regru", "rucenter", "timeweb", "beget",
    "amazon", "sedo", "cloudflare", "serverel",
)
RECENT_WINDOW_START = _dt.date(2022, 2, 22)


class ExperimentContext:
    """Builds (or wraps) a world and caches every shared computation."""

    def __init__(
        self,
        world: Optional[World] = None,
        config: Optional[ConflictScenarioConfig] = None,
        cadence_days: int = 7,
        workers: int = 1,
        chunk_days: Optional[int] = None,
        profile: bool = False,
        archive: Optional[Union[str, "MeasurementArchive"]] = None,
        faults=None,
        archive_readers: int = 1,
        scenario: Optional[Union[str, "ScenarioSpec"]] = None,
    ) -> None:
        if cadence_days < 1:
            raise AnalysisError(f"cadence must be >= 1 day: {cadence_days}")
        if workers < 1:
            raise AnalysisError(f"workers must be >= 1: {workers}")
        if archive_readers < 1:
            raise AnalysisError(
                f"archive_readers must be >= 1: {archive_readers}"
            )
        if archive is not None and world is not None:
            raise AnalysisError(
                "pass either a prebuilt world or an archive, not both"
            )
        self.scenario_spec = None
        if scenario is not None:
            if config is not None or world is not None:
                raise AnalysisError(
                    "pass either a scenario or a config/world, not both"
                )
            from ..scenario import ScenarioSpec

            spec = (
                scenario
                if isinstance(scenario, ScenarioSpec)
                else ScenarioSpec.resolve(str(scenario))
            )
            self.scenario_spec = spec
            config = spec.compile()
        elif config is not None and not getattr(config, "from_spec", False):
            # Ad-hoc configs bypass the canonical scenario identity the
            # archive fingerprint and the v2 query API key on.  Mirrors
            # the full_sweep() deprecation: old path still works, warns.
            warnings.warn(
                "constructing ExperimentContext from an ad-hoc "
                "ConflictScenarioConfig is deprecated; resolve a scenario "
                "instead: ExperimentContext(scenario='baseline') or "
                "ScenarioSpec.resolve(name).with_config(...).compile()",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            from ..scenario import ScenarioSpec

            config = ScenarioSpec.resolve("baseline").compile()
        self.config = config
        self.metrics = SweepMetrics()
        self.profile = profile
        self.faults = faults
        self.archive: Optional["MeasurementArchive"] = None
        if archive is not None:
            from ..archive.store import MeasurementArchive

            if isinstance(archive, MeasurementArchive):
                self.archive = archive
                if self.archive.metrics is None:
                    self.archive.metrics = self.metrics
                if self.archive.config is None:
                    # Enables in-place self-healing of damaged shards.
                    self.archive.config = self.config
                if self.archive.faults is None:
                    self.archive.faults = faults
                if archive_readers > 1 and self.archive.readers == 1:
                    self.archive.readers = archive_readers
            else:
                self.archive = MeasurementArchive(
                    archive,
                    metrics=self.metrics,
                    config=self.config,
                    faults=faults,
                    readers=archive_readers,
                )
            # A stale or foreign archive must be refused, not silently
            # mixed with a freshly simulated world.
            self.archive.manifest.check_scenario(self.config)
        self._world_lock = threading.Lock()
        self._catalog = None
        if world is not None:
            self._world = world
            # A caller-supplied world may not match self.config, so
            # worker processes cannot rebuild it: sweep in-process.
            engine_config = None
        else:
            self._world = None
            engine_config = self.config
        if self.archive is not None:
            from ..archive.store import ArchiveCollector

            # The world is handed over lazily: queries the archive can
            # answer from stored shard summaries never build it, which
            # is most of what makes warm archive queries beat live.
            self.collector = ArchiveCollector(
                self.archive,
                self._world if self._world is not None else (lambda: self.world),
            )
            # Shard reads are cheap; archive sweeps stay in-process.
            engine_config = None
        else:
            self.collector = FastCollector(self.world)
        self.engine = SweepEngine(
            self.collector,
            config=engine_config,
            workers=workers,
            chunk_days=chunk_days,
            metrics=self.metrics,
            faults=faults,
        )
        self.cadence_days = cadence_days
        self._api = None
        self._monitor: Optional[CtMonitor] = None
        self._scans: Optional[UniversalScanDataset] = None

    @property
    def world(self) -> World:
        """The scenario world, built on first access when config-derived.

        Live contexts touch it during construction (the collector needs
        it), so they pay for it up front exactly as before; an
        archive-backed context defers it until a query actually needs
        per-domain state — summary-served queries never do.
        """
        if self._world is None:
            with self._world_lock:
                if self._world is None:
                    with self.metrics.phase("world_build"):
                        self._world = build_scenario(self.config)
        return self._world

    @property
    def catalog(self):
        """The provider catalog, without forcing a world build.

        The standard catalog is scenario-independent (the world builder
        itself starts from it), so archive-backed contexts can resolve
        provider ASNs while the world stays unbuilt.
        """
        if self._catalog is None:
            if self._world is not None:
                self._catalog = self._world.catalog
            else:
                from ..providers.catalog import standard_catalog

                self._catalog = standard_catalog()
        return self._catalog

    @property
    def scenario_id(self) -> str:
        """The canonical scenario this context's world reproduces."""
        return getattr(self.config, "scenario_id", "baseline")

    @property
    def workers(self) -> int:
        """Worker processes used for longitudinal sweeps."""
        return self.engine.workers

    @property
    def api(self) -> "AnalysisFacade":
        """The unified query facade over this context (see :mod:`repro.api`).

        Owns the cached sweeps and the :meth:`AnalysisFacade.query`
        entry point the CLI and the HTTP service share.
        """
        if self._api is None:
            from ..api.facade import AnalysisFacade

            self._api = AnalysisFacade(self)
        return self._api

    # ------------------------------------------------------------------
    # The five-year sweep (Figures 1-3, headline stats)
    # ------------------------------------------------------------------

    def full_sweep(self) -> SweepSeries:
        """Deprecated shim: use :meth:`api` (``context.api.full_sweep()``)."""
        warnings.warn(
            "ExperimentContext.full_sweep() is deprecated; route through "
            "the unified facade: context.api.full_sweep() / repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.api.full_sweep()

    # ------------------------------------------------------------------
    # The recent daily window (Figures 4 and 5)
    # ------------------------------------------------------------------

    def fig4_asns(self) -> List[int]:
        """The tracked hosting ASNs, Figure 4's legend order."""
        return [
            self.catalog.get(key).primary_asn for key in FIG4_PROVIDERS
        ]

    def _run_recent(self) -> RecentWindowSeries:
        """Deprecated shim: use ``context.api.recent_window()``."""
        warnings.warn(
            "ExperimentContext._run_recent() is deprecated; route through "
            "the unified facade: context.api.recent_window() / repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.api.recent_window()

    def recent_asn_shares(self) -> AsnShareSeries:
        """Figure 4's daily per-ASN shares."""
        return self.api.recent_window().asn_shares

    def recent_sanctioned_composition(self) -> CompositionSeries:
        """Figure 5's daily sanctioned NS composition."""
        return self.api.recent_window().sanctioned_composition

    def recent_listed_counts(self) -> List[int]:
        """Figure 5's black curve: domains listed as of each day."""
        return self.api.recent_window().listed_counts

    # ------------------------------------------------------------------
    # PKI datasets (Figure 8, Tables 1-2, §4.3)
    # ------------------------------------------------------------------

    def _require_pki(self):
        if self.world.pki is None:
            raise AnalysisError(
                "this experiment needs the PKI simulation "
                "(build the scenario with with_pki=True)"
            )
        return self.world.pki

    def monitor(self) -> CtMonitor:
        """Censys-style CT monitor over the study TLDs (cached)."""
        if self._monitor is None:
            pki = self._require_pki()
            monitor = CtMonitor(
                pki.logs,
                matcher=lambda cert: cert.secures_tld(("ru", "xn--p1ai")),
            )
            with self.metrics.phase("ct_monitor"):
                monitor.poll()
            self._monitor = monitor
        return self._monitor

    def scans(
        self,
        start: _dt.date = _dt.date(2022, 3, 1),
        end: _dt.date = _dt.date(2022, 5, 15),
        step: int = 7,
    ) -> UniversalScanDataset:
        """Accumulated CUIDS scans over the Russian-CA window (cached)."""
        if self._scans is None:
            pki = self._require_pki()
            scanner = TlsScanner(pki.serving_view(self.world))
            dataset = UniversalScanDataset()
            with self.metrics.phase("tls_scans") as stat:
                dataset.run_sweeps(scanner, start, end, step)
                stat.snapshots += (end - start).days // step + 1
            self._scans = dataset
        return self._scans
