"""Experiments: regenerate every figure and table of the paper."""

from .base import ExperimentResult
from .context import ExperimentContext, SweepSeries
from .paper import PAPER
from .registry import EXPERIMENTS, EXTENSIONS, run_all, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentContext",
    "SweepSeries",
    "PAPER",
    "EXPERIMENTS",
    "EXTENSIONS",
    "run_all",
    "run_experiment",
]
