"""Figure 7: domain movement in Sedo's AS47846."""

from __future__ import annotations

import datetime as _dt

from ..core.movement import analyze_movement
from ..timeline import STUDY_END
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]

_FROM = _dt.date(2022, 3, 8)


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 7: Sedo AS47846, 2022-03-08 vs 2022-05-25."""
    asn = context.world.catalog.get("sedo").primary_asn
    report = analyze_movement(context.collector, asn, _FROM, STUDY_END)
    registry = context.world.catalog.as_registry()
    serverel_asn = context.world.catalog.get("serverel").primary_asn

    result = ExperimentResult(
        "fig7",
        f"Russian domain movement in Sedo AS{asn}",
        "Figure 7, Section 3.4",
    )
    result.add_row(category="in AS on 2022-03-08", count=report.original)
    result.add_row(category="remained", count=report.remained)
    result.add_row(category="relocated to another AS", count=report.relocated)
    result.add_row(category="registration expired", count=report.expired)
    result.add_row(category="inflow (all)", count=report.inflow_total)

    result.measured = {
        "relocated_share": round(report.relocated_share, 2),
        "remained_share": round(report.remained_share, 3),
        "serverel_share_of_relocated": round(
            report.destination_share(serverel_asn), 2
        ),
        "original_scaled": report.original,
    }
    result.paper = {
        "relocated_share": PAPER["fig7"]["relocated_share"],
        "remained_share": round(
            PAPER["fig7"]["remained"] / PAPER["fig7"]["original"], 3
        ),
        "serverel_share_of_relocated": "most (ultimately move to Serverel)",
        "original_scaled": f'{PAPER["fig7"]["original"]} (real scale)',
    }

    destinations = ", ".join(
        f"{registry.name_of(dest)} ({count})"
        for dest, count in report.top_destinations(4)
    )
    result.sections.append(f"relocation destinations: {destinations or 'none'}")
    return result
