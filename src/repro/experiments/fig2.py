"""Figure 2: TLD-dependency composition of NS names."""

from __future__ import annotations

from ..timeline import CONFLICT_START, STUDY_END, STUDY_START
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER
from .render import fmt_pct, sparkline

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate Figure 2 from the full-period sweep."""
    series = context.api.full_sweep().tld_composition
    result = ExperimentResult(
        "fig2",
        "TLD dependency composition of NS names",
        "Figure 2, Section 3.1",
    )
    result.add_series("date", [d.isoformat() for d in series.dates()])
    for which in ("full", "part", "non"):
        result.add_series(f"{which}_pct", [round(v, 2) for v in series.shares(which)])

    first = series.nearest(STUDY_START)
    last = series.nearest(STUDY_END)
    pre_conflict = series.nearest(CONFLICT_START)
    result.measured = {
        "tld_full_change_pp": round(last.share("full") - first.share("full"), 1),
        "tld_part_change_pp": round(last.share("part") - first.share("part"), 1),
        "conflict_full_bump_pp": round(
            last.share("full") - pre_conflict.share("full"), 1
        ),
        "conflict_part_bump_pp": round(
            last.share("part") - pre_conflict.share("part"), 1
        ),
    }
    result.paper = dict(PAPER["fig2"])

    for which in ("full", "part", "non"):
        result.sections.append(
            f"{which:4s}: " + sparkline(series.shares(which))
            + f"  ({fmt_pct(first.share(which))} -> {fmt_pct(last.share(which))})"
        )
    return result
