"""Section 4.3: the Russian Trusted Root CA's initial deployment."""

from __future__ import annotations

import datetime as _dt

from ..core.trustedca import analyze_trusted_ca
from .base import ExperimentResult
from .context import ExperimentContext
from .paper import PAPER

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Regenerate the §4.3 numbers from accumulated scan data."""
    pki = context.world.pki
    scans = context.scans()
    monitor = context.monitor()
    elsewhere = len(
        monitor.store.issued_between(_dt.date(2022, 3, 1), _dt.date(2022, 5, 15))
    )
    report = analyze_trusted_ca(
        scans,
        pki.russian_ca_org,
        context.world.sanctions.all_domains(),
        comparison_issued_elsewhere=elsewhere,
    )

    result = ExperimentResult(
        "trustedca",
        "Russian Trusted Root CA deployment (scan-observed)",
        "Section 4.3",
    )
    result.add_row(metric="scan-observed certificates", value=report.certificate_count)
    result.add_row(metric=".ru domains secured", value=len(report.ru_domains))
    result.add_row(metric=".рф domains secured", value=len(report.rf_domains))
    result.add_row(metric="other-TLD domains secured", value=len(report.other_domains))
    result.add_row(metric="sanctioned domains secured", value=len(report.sanctioned_secured))
    result.add_row(
        metric="certs by all other CAs (same window)",
        value=report.comparison_issued_elsewhere,
    )

    result.measured = {
        "certificates": report.certificate_count,
        "ru_domains": len(report.ru_domains),
        "rf_domains": len(report.rf_domains),
        "sanctioned_secured": len(report.sanctioned_secured),
        "sanctioned_coverage_pct": round(report.sanctioned_coverage, 1),
        "in_ct_logs": sum(
            1
            for cert in report.certificates
            if any(log.contains(cert) for log in pki.logs)
        ),
    }
    result.paper = {
        "certificates": PAPER["trustedca"]["certificates"],
        "ru_domains": PAPER["trustedca"]["ru_domains"],
        "rf_domains": PAPER["trustedca"]["rf_domains"],
        "sanctioned_secured": PAPER["trustedca"]["sanctioned_secured"],
        "sanctioned_coverage_pct": PAPER["trustedca"]["sanctioned_coverage_pct"],
        "in_ct_logs": 0,
    }
    first, last = report.issuance_window()
    if first is not None:
        result.sections.append(
            f"issuance window observed: {first} .. {last} "
            "(a period of a few weeks, as the paper notes)"
        )
    return result
