"""Extension: concentration of the CA and hosting markets (Section 6).

Not a numbered paper artefact — it quantifies the discussion section's
claims: Let's Encrypt's "near-complete control" of `.ru`/`.рф`
certificates, and Russia's unusually centralised hosting market.
"""

from __future__ import annotations

from ..core.concentration import analyze_market
from ..core.issuance import issuance_by_phase
from ..timeline import Phase, STUDY_END, STUDY_START
from .base import ExperimentResult
from .context import ExperimentContext

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Measure HHI/CR for the CA market (per phase) and hosting market."""
    result = ExperimentResult(
        "concentration",
        "Market concentration: CAs and hosting (extension)",
        "Section 6 (discussion), quantified",
    )

    phases = issuance_by_phase(context.monitor())
    ca_reports = {}
    for phase in (Phase.PRE_CONFLICT, Phase.PRE_SANCTIONS, Phase.POST_SANCTIONS):
        report = analyze_market(f"CAs {phase}", phases[phase].counts)
        ca_reports[str(phase)] = report
        result.add_row(
            market=f"CA issuance, {phase}",
            hhi=round(report.hhi, 3),
            cr1=f"{100 * report.cr1:.1f}%",
            cr3=f"{100 * report.cr3:.1f}%",
            leader=report.leader,
            effective_firms=round(report.effective_competitors, 2),
        )

    collector = context.collector
    hosting_reports = {}
    for label, date in (("start", STUDY_START), ("end", STUDY_END)):
        snapshot = collector.collect(date)
        labels = snapshot.epoch.hosting_labels
        counts: dict = {}
        for plan_id in snapshot.hosting_ids[snapshot.measured]:
            asn = int(labels.primary_asn[plan_id])
            counts[asn] = counts.get(asn, 0) + 1
        named = {
            context.world.catalog.as_registry().name_of(asn): count
            for asn, count in counts.items()
        }
        report = analyze_market(f"hosting {label}", named)
        hosting_reports[label] = report
        result.add_row(
            market=f"hosting networks, {label} ({date})",
            hhi=round(report.hhi, 3),
            cr1=f"{100 * report.cr1:.1f}%",
            cr3=f"{100 * report.cr3:.1f}%",
            leader=report.leader,
            effective_firms=round(report.effective_competitors, 2),
        )

    post = ca_reports[str(Phase.POST_SANCTIONS)]
    pre = ca_reports[str(Phase.PRE_CONFLICT)]
    result.measured = {
        "ca_hhi_pre_conflict": round(pre.hhi, 3),
        "ca_hhi_post_sanctions": round(post.hhi, 3),
        "ca_leader_post_sanctions": post.leader,
        "ca_highly_concentrated": post.highly_concentrated,
        "hosting_hhi_start": round(hosting_reports["start"].hhi, 3),
        "hosting_hhi_end": round(hosting_reports["end"].hhi, 3),
    }
    result.paper = {
        "ca_leader_post_sanctions": "Let's Encrypt (>99% share)",
        "ca_highly_concentrated": True,
        "ca_hhi_post_sanctions": "≈0.985 implied by Table 1 shares",
    }
    result.sections.append(
        "interpretation: CA concentration *rises* through the conflict "
        "(the paper's single-point-of-failure concern), while the hosting "
        "market stays moderately concentrated and nearly unchanged."
    )
    return result
