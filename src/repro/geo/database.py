"""An IP2location-style range geolocation database.

The real study geolocates every measured address with contemporaneous
IP2location snapshots.  Our equivalent is a sorted list of disjoint
``[start, end] -> country`` ranges with binary-search point lookups and a
vectorised bulk lookup for the columnar collector.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..errors import GeolocationError
from ..net.ip import is_valid_ipv4_int
from ..net.prefix import Prefix
from .countries import validate_country

__all__ = [
    "GeoRange",
    "GeoDatabase",
    "GeoDatabaseBuilder",
    "merge_adjacent_ranges",
    "with_override",
]


class GeoRange:
    """One contiguous address range mapped to a country."""

    __slots__ = ("start", "end", "country")

    def __init__(self, start: int, end: int, country: str) -> None:
        if not (is_valid_ipv4_int(start) and is_valid_ipv4_int(end)):
            raise GeolocationError(f"bad range bounds: {start!r}..{end!r}")
        if start > end:
            raise GeolocationError(f"inverted range: {start} > {end}")
        self.start = start
        self.end = end
        self.country = validate_country(country)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeoRange):
            return NotImplemented
        return (self.start, self.end, self.country) == (
            other.start,
            other.end,
            other.country,
        )

    def __repr__(self) -> str:
        return f"GeoRange({self.start}..{self.end} -> {self.country})"


class GeoDatabase:
    """An immutable snapshot of the geolocation database."""

    def __init__(self, ranges: Iterable[GeoRange]) -> None:
        ordered = sorted(ranges, key=lambda r: r.start)
        for prev, nxt in zip(ordered, ordered[1:]):
            if nxt.start <= prev.end:
                raise GeolocationError(
                    f"overlapping geo ranges: {prev!r} and {nxt!r}"
                )
        self._ranges: List[GeoRange] = ordered
        self._starts: List[int] = [r.start for r in ordered]
        # Arrays for the vectorised path.
        self._np_starts = np.asarray(self._starts, dtype=np.int64)
        self._np_ends = np.asarray([r.end for r in ordered], dtype=np.int64)
        countries = sorted({r.country for r in ordered})
        self._country_codes: List[str] = countries
        index_of = {c: i for i, c in enumerate(countries)}
        self._np_country_idx = np.asarray(
            [index_of[r.country] for r in ordered], dtype=np.int32
        )

    def __len__(self) -> int:
        return len(self._ranges)

    @property
    def ranges(self) -> List[GeoRange]:
        """All ranges, sorted by start address."""
        return list(self._ranges)

    @property
    def countries(self) -> List[str]:
        """Distinct countries present, sorted."""
        return list(self._country_codes)

    def lookup(self, address: int) -> Optional[str]:
        """Country for ``address``, or None when unmapped."""
        if not is_valid_ipv4_int(address):
            raise GeolocationError(f"not an IPv4 integer: {address!r}")
        pos = bisect.bisect_right(self._starts, address) - 1
        if pos < 0:
            return None
        entry = self._ranges[pos]
        return entry.country if address <= entry.end else None

    def lookup_many(self, addresses: Iterable[int]) -> List[Optional[str]]:
        """Point lookups preserving order."""
        return [self.lookup(address) for address in addresses]

    def lookup_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised lookup: returns country-index array, -1 for unmapped.

        Country indices refer to :attr:`countries`; the caller converts
        back to codes once per distinct value instead of per address.
        """
        values = np.asarray(addresses, dtype=np.int64)
        if len(self._np_starts) == 0:
            return np.full(values.shape, -1, dtype=np.int32)
        pos = np.searchsorted(self._np_starts, values, side="right") - 1
        result = np.full(values.shape, -1, dtype=np.int32)
        inside = pos >= 0
        clipped = np.clip(pos, 0, None)
        covered = inside & (values <= self._np_ends[clipped])
        result[covered] = self._np_country_idx[clipped[covered]]
        return result

    def country_code_for_index(self, index: int) -> Optional[str]:
        """Map a :meth:`lookup_array` index back to its country code."""
        if index < 0:
            return None
        return self._country_codes[index]


def merge_adjacent_ranges(ranges: Iterable[GeoRange]) -> List[GeoRange]:
    """Coalesce contiguous same-country ranges (input may be unsorted)."""
    merged: List[GeoRange] = []
    for entry in sorted(ranges, key=lambda r: r.start):
        if (
            merged
            and merged[-1].country == entry.country
            and merged[-1].end + 1 == entry.start
        ):
            merged[-1] = GeoRange(merged[-1].start, entry.end, entry.country)
        else:
            merged.append(entry)
    return merged


class GeoDatabaseBuilder:
    """Accumulates prefix-to-country assignments into a :class:`GeoDatabase`."""

    def __init__(self) -> None:
        self._ranges: List[Tuple[int, int, str]] = []

    def add_prefix(self, prefix: Prefix, country: str) -> "GeoDatabaseBuilder":
        """Map every address in ``prefix`` to ``country``."""
        self._ranges.append((prefix.first, prefix.last, validate_country(country)))
        return self

    def add_range(self, start: int, end: int, country: str) -> "GeoDatabaseBuilder":
        """Map the inclusive range to ``country``."""
        self._ranges.append((start, end, validate_country(country)))
        return self

    def build(self, merge_adjacent: bool = True) -> GeoDatabase:
        """Build the immutable snapshot, optionally merging adjacent ranges."""
        ranges = [GeoRange(s, e, c) for s, e, c in sorted(self._ranges)]
        if merge_adjacent:
            ranges = merge_adjacent_ranges(ranges)
        return GeoDatabase(ranges)


def with_override(
    database: GeoDatabase, start: int, end: int, country: str
) -> GeoDatabase:
    """A new database where [start, end] maps to ``country``.

    Existing ranges overlapping the window are clipped around it.  This is
    how an address-block *transfer* between countries is reflected in a
    fresh geolocation snapshot (e.g. the Netnod-to-RU-CENTER handover in
    the geolocation-lag ablation).  Adjacent same-country ranges are
    re-merged on rebuild so repeated overrides (one per scenario event)
    cannot fragment the database and degrade ``lookup_array``.
    """
    if start > end:
        raise GeolocationError(f"inverted override range: {start} > {end}")
    updated: List[GeoRange] = []
    for entry in database.ranges:
        if entry.end < start or entry.start > end:
            updated.append(entry)
            continue
        if entry.start < start:
            updated.append(GeoRange(entry.start, start - 1, entry.country))
        if entry.end > end:
            updated.append(GeoRange(end + 1, entry.end, entry.country))
    updated.append(GeoRange(start, end, validate_country(country)))
    return GeoDatabase(merge_adjacent_ranges(updated))
