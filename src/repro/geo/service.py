"""Date-versioned geolocation: "contemporaneous" lookups.

The paper geolocates each day's measurements with that day's IP2location
snapshot (footnote 5 notes inferences can lag when address space *moves*
rather than changes).  :class:`GeoService` keeps an ordered history of
database snapshots and answers lookups as-of any study date, including an
optional publication lag to reproduce that footnote's artefact.
"""

from __future__ import annotations

import bisect
import datetime as _dt
from typing import List, Optional, Tuple

from ..errors import GeolocationError
from ..timeline import DateLike, day_index
from .database import GeoDatabase

__all__ = ["GeoService"]


class GeoService:
    """An append-only history of :class:`GeoDatabase` snapshots."""

    def __init__(self, lag_days: int = 0) -> None:
        if lag_days < 0:
            raise GeolocationError(f"lag must be non-negative, got {lag_days}")
        self._lag_days = lag_days
        self._epochs: List[Tuple[int, GeoDatabase]] = []

    @property
    def lag_days(self) -> int:
        """Snapshot publication lag applied to every query date."""
        return self._lag_days

    @property
    def epochs(self) -> List[Tuple[int, GeoDatabase]]:
        """(effective day index, snapshot) pairs, oldest first."""
        return list(self._epochs)

    def publish(self, effective: DateLike, database: GeoDatabase) -> None:
        """Install a snapshot effective from ``effective`` onward.

        Snapshots must be published in chronological order.
        """
        day = day_index(effective)
        if self._epochs and day <= self._epochs[-1][0]:
            raise GeolocationError(
                "geo snapshots must be published in increasing date order"
            )
        self._epochs.append((day, database))

    def database_at(self, date: DateLike) -> GeoDatabase:
        """The snapshot a client would use on ``date`` (lag applied)."""
        if not self._epochs:
            raise GeolocationError("no geo snapshots published")
        effective_day = day_index(date) - self._lag_days
        days = [day for day, _ in self._epochs]
        pos = bisect.bisect_right(days, effective_day) - 1
        if pos < 0:
            # Before the first snapshot: real studies fall back to the
            # earliest data they have rather than refusing to geolocate.
            pos = 0
        return self._epochs[pos][1]

    def lookup(self, date: DateLike, address: int) -> Optional[str]:
        """Country of ``address`` as seen on ``date``."""
        return self.database_at(date).lookup(address)

    def epoch_dates(self) -> List[_dt.date]:
        """Effective dates of all published snapshots."""
        from ..timeline import from_day_index

        return [from_day_index(day) for day, _ in self._epochs]
