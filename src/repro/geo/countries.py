"""Country codes used throughout the simulation.

A tiny ISO-3166-alpha-2 subset covering every country the paper mentions,
plus helpers for the one distinction the analysis cares about: Russian
Federation vs everything else.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["RU", "COUNTRY_NAMES", "country_name", "is_russian", "validate_country"]

#: The Russian Federation, the pivot of the whole analysis.
RU = "RU"

#: Display names for the countries appearing in the scenario.
COUNTRY_NAMES: Dict[str, str] = {
    "RU": "Russian Federation",
    "US": "United States",
    "DE": "Germany",
    "NL": "Netherlands",
    "SE": "Sweden",
    "FR": "France",
    "GB": "United Kingdom",
    "CZ": "Czech Republic",
    "EE": "Estonia",
    "PL": "Poland",
    "UA": "Ukraine",
    "FI": "Finland",
    "SG": "Singapore",
    "JP": "Japan",
    "CA": "Canada",
    "CH": "Switzerland",
    "LT": "Lithuania",
    "TR": "Turkey",
    "KZ": "Kazakhstan",
    "BY": "Belarus",
}


def validate_country(code: str) -> str:
    """Return ``code`` if it looks like an ISO alpha-2 code; raise otherwise."""
    if len(code) != 2 or not code.isalpha() or not code.isupper():
        raise ValueError(f"not an ISO alpha-2 country code: {code!r}")
    return code


def country_name(code: str) -> str:
    """Human-readable name, falling back to the code itself."""
    return COUNTRY_NAMES.get(code, code)


def is_russian(code: Optional[str]) -> bool:
    """True when ``code`` is the Russian Federation."""
    return code == RU
