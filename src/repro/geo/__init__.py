"""Geolocation substrate: countries, range databases, versioned service."""

from .countries import COUNTRY_NAMES, RU, country_name, is_russian, validate_country
from .database import GeoDatabase, GeoDatabaseBuilder, GeoRange, with_override
from .service import GeoService

__all__ = [
    "COUNTRY_NAMES",
    "RU",
    "country_name",
    "is_russian",
    "validate_country",
    "GeoDatabase",
    "GeoDatabaseBuilder",
    "GeoRange",
    "GeoService",
    "with_override",
]
