"""Incremental, resumable archive builds.

:class:`ArchiveBuilder` drives the parallel :class:`SweepEngine` with a
reducer that writes one day shard per measurement day *inside the
worker process* and sends back only a small :class:`ShardInfo`; the
parent folds those into the manifest and rewrites it atomically after
every contiguous segment.  Three properties follow:

* **incremental** — only days missing from the manifest are swept, so
  extending an archive (new date range, finer cadence) reuses every
  existing shard;
* **resumable** — an interrupted build leaves at worst unregistered
  shard files; the next build re-derives the missing days and, because
  shard bytes are deterministic, converges on an archive byte-identical
  to an uninterrupted build;
* **parallel** — workers write shards independently (atomic temp-file
  renames), nothing but per-day metadata crosses the process boundary.
"""

from __future__ import annotations

import datetime as _dt
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ArchiveError, ArchiveMismatchError
from ..faults import sync_fault_metrics
from ..measurement.fast import DEFAULT_OUTAGE_DATES, _OUTAGE_COVERAGE, FastCollector
from ..measurement.metrics import SweepMetrics
from ..measurement.sweep import SweepEngine
from ..timeline import STUDY_END, STUDY_START, DateLike, as_date
from .kernel import summarize_snapshot
from .manifest import DayEntry, Manifest, scenario_fingerprint
from .shard import DayShardRecord, probe_shard, write_shard
from .store import MeasurementArchive
from .stream import DayStream, write_shard_stream

__all__ = [
    "RECENT_DAILY_START",
    "ShardInfo",
    "ArchiveShardReducer",
    "BuildReport",
    "ArchiveBuilder",
    "standard_plan_dates",
    "shard_filename",
]

#: Start of the daily conflict-window sweep (Figures 4 and 5).
RECENT_DAILY_START = _dt.date(2022, 2, 22)


def shard_filename(date: _dt.date) -> str:
    """Canonical shard file name for one day."""
    return f"{date.isoformat()}.shard"


class ShardInfo:
    """What a worker reports after writing one day shard."""

    __slots__ = ("date", "file", "bytes", "records", "crc32", "write_seconds")

    def __init__(
        self,
        date: _dt.date,
        file: str,
        bytes: int,
        records: int,
        crc32: int,
        write_seconds: float,
    ) -> None:
        self.date = date
        self.file = file
        self.bytes = bytes
        self.records = records
        self.crc32 = crc32
        self.write_seconds = write_seconds

    def entry(self) -> DayEntry:
        return DayEntry(self.date, self.file, self.bytes, self.records, self.crc32)

    def __repr__(self) -> str:
        return f"ShardInfo({self.date}, {self.bytes}B)"


class ArchiveShardReducer:
    """Day reducer that persists each snapshot as a shard in the worker.

    The apex/plan materialisation caches are per-process accelerators
    keyed by ``(domain_index, hosting_id)`` / ``(epoch, dns_id)``;
    assignments change rarely, so consecutive days hit the caches almost
    every time.  They are dropped on pickling, like the other reducers.
    """

    def __init__(
        self,
        directory: str,
        faults=None,
        chunk_domains: Optional[int] = None,
        metrics: Optional[SweepMetrics] = None,
    ) -> None:
        self.directory = str(directory)
        self.faults = faults
        #: When set, days are encoded through the streaming writer in
        #: bounded chunks of this many domains instead of materialising
        #: the whole day; the bytes on disk are identical either way.
        self.chunk_domains = chunk_domains
        #: Parent-process metrics for RSS sampling at chunk boundaries;
        #: dropped on pickling (worker processes sample nothing).
        self.metrics = metrics
        self._apex_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._plan_cache: Dict[Tuple[int, int], Tuple[Tuple[str, ...], Tuple[int, ...]]] = {}

    def __getstate__(self):
        return {
            "directory": self.directory,
            "faults": self.faults,
            "chunk_domains": self.chunk_domains,
        }

    def __setstate__(self, state) -> None:
        self.directory = state["directory"]
        self.faults = state.get("faults")
        self.chunk_domains = state.get("chunk_domains")
        self.metrics = None
        self._apex_cache = {}
        self._plan_cache = {}

    def reduce_day(self, snapshot) -> ShardInfo:
        """Columnarise and write one day; returns the manifest metadata."""
        started = time.perf_counter()
        name = shard_filename(snapshot.date)
        path = os.path.join(self.directory, name)
        if self.chunk_domains:
            # Streaming path: the day is summarised, encoded, and
            # compressed in bounded domain chunks — no whole-day string
            # or payload buffer ever exists.  Byte-identical to the
            # whole-day branch below by construction (shared prefix
            # encoder, chunk-invariant zlib stream).
            stream = DayStream.from_snapshot(
                snapshot,
                self._apex_cache,
                self._plan_cache,
                chunk_domains=self.chunk_domains,
            )
            file_bytes, crc = write_shard_stream(
                path, stream, self.chunk_domains, faults=self.faults
            )
            records = len(stream)
        else:
            record = DayShardRecord.from_snapshot(
                snapshot, self._apex_cache, self._plan_cache
            )
            # Pre-aggregate the day once at build time (shard format
            # v3): readers answer the coarse longitudinal queries from
            # this block without decoding the columns or building a
            # world.
            record.summary = summarize_snapshot(snapshot)
            file_bytes, crc = write_shard(path, record, faults=self.faults)
            records = len(record.measured)
        if self.metrics is not None:
            self.metrics.sample_rss()
        return ShardInfo(
            snapshot.date,
            name,
            file_bytes,
            records,
            crc,
            time.perf_counter() - started,
        )


class BuildReport:
    """Outcome of one :meth:`ArchiveBuilder.build` call."""

    __slots__ = ("written", "skipped", "bytes_written", "segments", "adopted")

    def __init__(
        self,
        written: List[_dt.date],
        skipped: List[_dt.date],
        bytes_written: int,
        segments: int,
        adopted: Optional[List[_dt.date]] = None,
    ) -> None:
        #: Days swept and persisted by this call, chronological.
        self.written = written
        #: Requested days the manifest already covered.
        self.skipped = skipped
        self.bytes_written = bytes_written
        #: Contiguous missing-day runs the call was split into.
        self.segments = segments
        #: Verified orphan shards (from an interrupted build) registered
        #: into the manifest without a re-sweep, chronological.
        self.adopted = [] if adopted is None else adopted

    def __repr__(self) -> str:
        return (
            f"BuildReport({len(self.written)} written, "
            f"{len(self.skipped)} skipped, {len(self.adopted)} adopted, "
            f"{self.bytes_written}B)"
        )


def standard_plan_dates(cadence_days: int = 7) -> List[_dt.date]:
    """The dates the standard experiments sweep, chronological.

    The full study period at ``cadence_days`` plus the conflict window
    (Figures 4 and 5) daily.
    """
    if cadence_days < 1:
        raise ArchiveError(f"cadence must be >= 1 day: {cadence_days}")
    dates = set(_date_grid(STUDY_START, STUDY_END, cadence_days))
    dates.update(_date_grid(RECENT_DAILY_START, STUDY_END, 1))
    return sorted(dates)


def _date_grid(start: DateLike, end: DateLike, step: int) -> List[_dt.date]:
    if step < 1:
        raise ArchiveError(f"build step must be >= 1 day: {step}")
    start_date, end_date = as_date(start), as_date(end)
    if start_date > end_date:
        raise ArchiveError(f"empty build range {start_date} .. {end_date}")
    grid = []
    day = start_date
    while day <= end_date:
        grid.append(day)
        day += _dt.timedelta(days=step)
    return grid


def _segments(dates: Sequence[_dt.date]) -> List[Tuple[_dt.date, _dt.date, int]]:
    """Split sorted dates into maximal constant-stride (start, end, step) runs."""
    runs: List[Tuple[_dt.date, _dt.date, int]] = []
    i = 0
    while i < len(dates):
        j = i
        stride = (
            (dates[i + 1] - dates[i]).days if i + 1 < len(dates) else 1
        )
        while j + 1 < len(dates) and (dates[j + 1] - dates[j]).days == stride:
            j += 1
        runs.append((dates[i], dates[j], stride))
        i = j + 1
    return runs


class ArchiveBuilder:
    """Builds or extends one archive directory from a scenario config."""

    def __init__(
        self,
        directory: str,
        config,
        workers: int = 1,
        chunk_days: Optional[int] = None,
        metrics: Optional[SweepMetrics] = None,
        outage_dates: Sequence[_dt.date] = DEFAULT_OUTAGE_DATES,
        outage_coverage: float = _OUTAGE_COVERAGE,
        collector_seed: int = 7,
        faults=None,
        chunk_domains: Optional[int] = None,
    ) -> None:
        self.directory = str(directory)
        self.config = config
        self.workers = int(workers)
        self.chunk_days = chunk_days
        #: Bounded-memory streaming encode: domains per encoded chunk
        #: (``None`` keeps the whole-day path).  Output bytes are
        #: identical either way.
        self.chunk_domains = chunk_domains
        self.metrics = metrics
        self.faults = faults
        self._outage_dates = tuple(sorted(as_date(d) for d in outage_dates))
        self._outage_coverage = float(outage_coverage)
        self._collector_seed = int(collector_seed)
        # The world/engine are built lazily: a fully-covered (no-op
        # resume) build never pays the world construction cost.
        self._engine: Optional[SweepEngine] = None
        self._world = None

    # ------------------------------------------------------------------
    # Lazy simulation state
    # ------------------------------------------------------------------

    def _ensure_engine(self) -> SweepEngine:
        if self._engine is None:
            from ..sim.conflict import build_world

            if self.metrics is not None:
                with self.metrics.phase("world_build"):
                    self._world = build_world(self.config)
            else:
                self._world = build_world(self.config)
            collector = FastCollector(
                self._world,
                outage_dates=self._outage_dates,
                outage_coverage=self._outage_coverage,
                seed=self._collector_seed,
            )
            self._engine = SweepEngine(
                collector,
                config=self.config,
                workers=self.workers,
                chunk_days=self.chunk_days,
                metrics=self.metrics,
                faults=self.faults,
            )
        return self._engine

    def _collector_params(self) -> Dict[str, object]:
        return {
            "outage_dates": [d.isoformat() for d in self._outage_dates],
            "outage_coverage": self._outage_coverage,
            "seed": self._collector_seed,
        }

    def _load_or_create_manifest(self) -> Manifest:
        if os.path.exists(os.path.join(self.directory, "manifest.json")):
            manifest = Manifest.load(self.directory)
            manifest.check_scenario(self.config)
            if manifest.collector != self._collector_params():
                raise ArchiveMismatchError(
                    "archive was collected under different outage parameters "
                    f"(archive={manifest.collector}, "
                    f"requested={self._collector_params()})"
                )
            return manifest
        os.makedirs(self.directory, exist_ok=True)
        self._ensure_engine()
        return Manifest(
            scenario_fingerprint(self.config),
            self._collector_params(),
            len(self._world.population),
        )

    # ------------------------------------------------------------------
    # Builds
    # ------------------------------------------------------------------

    def _adopt_orphans(
        self, manifest: Manifest, missing: Sequence[_dt.date]
    ) -> List[_dt.date]:
        """Register verified orphan shards for missing days, no re-sweep.

        An interrupted build — a crash mid-segment, a kill between a
        worker's shard write and the parent's manifest flush (the
        ``chunk_days`` window) — leaves complete, CRC-valid shard files
        that the manifest never recorded.  Because shard bytes are
        write-atomic and deterministic, such a file *is* the shard the
        resume would produce; probing it (full CRC verify plus a
        date/population identity check) and adding its manifest entry
        converges on the identical archive without re-sweeping the day.
        Anything that fails the probe is left for the normal re-sweep,
        whose atomic write replaces it.
        """
        adopted: List[_dt.date] = []
        for date in missing:
            name = shard_filename(date)
            path = os.path.join(self.directory, name)
            if not os.path.exists(path):
                continue
            try:
                probe = probe_shard(path)
            except ArchiveError:
                continue
            if (
                probe.date != date
                or probe.population_size != manifest.population_size
            ):
                continue
            manifest.add_day(
                DayEntry(date, name, probe.file_bytes, probe.records, probe.crc32)
            )
            adopted.append(date)
        return adopted

    def build(self, start: DateLike, end: DateLike, step: int = 1) -> BuildReport:
        """Archive every ``step``-th day in [start, end] not yet covered."""
        wanted = _date_grid(start, end, step)
        manifest = self._load_or_create_manifest()
        missing = manifest.missing_dates(wanted)
        skipped = sorted(set(wanted) - set(missing))
        adopted = self._adopt_orphans(manifest, missing)
        if adopted:
            leftover = set(adopted)
            missing = [date for date in missing if date not in leftover]
        if self.metrics is not None:
            self.metrics.sample_rss()
        if not missing:
            # Still (re)write the manifest so a fresh no-op build of an
            # empty range leaves a valid archive behind (and adopted
            # orphans become durable).
            manifest.save(self.directory, faults=self.faults)
            return BuildReport([], skipped, 0, 0, adopted)
        engine = self._ensure_engine()
        reducer = ArchiveShardReducer(
            self.directory,
            faults=self.faults,
            chunk_domains=self.chunk_domains,
            metrics=self.metrics,
        )
        os.makedirs(self.directory, exist_ok=True)
        written: List[_dt.date] = []
        bytes_written = 0
        segments = _segments(missing)
        for seg_start, seg_end, seg_step in segments:
            if self.metrics is not None:
                with self.metrics.phase("archive_build"):
                    infos: List[ShardInfo] = engine.run(
                        reducer, seg_start, seg_end, seg_step, phase="archive_build"
                    )
            else:
                infos = engine.run(
                    reducer, seg_start, seg_end, seg_step, phase="archive_build"
                )
            for info in infos:
                manifest.add_day(info.entry())
                written.append(info.date)
                bytes_written += info.bytes
            # Flush after every segment: an interruption costs at most
            # the in-flight segment, never what is already on disk.
            manifest.save(self.directory, faults=self.faults)
            if self.metrics is not None:
                self.metrics.sample_rss()
                with self.metrics.phase("archive_write") as stat:
                    pass
                stat.wall_seconds += sum(info.write_seconds for info in infos)
                stat.snapshots += len(infos)
                stat.notes["bytes"] = (
                    int(stat.notes.get("bytes", 0))
                    + sum(info.bytes for info in infos)
                )
        if self.metrics is not None:
            sync_fault_metrics(self.faults, self.metrics)
        return BuildReport(written, skipped, bytes_written, len(segments), adopted)

    def build_standard(self, cadence_days: int = 7) -> BuildReport:
        """Archive what the standard experiments read.

        The full study period at ``cadence_days`` plus the conflict
        window (Figures 4 and 5) daily — the union the experiment
        context sweeps.
        """
        if cadence_days < 1:
            raise ArchiveError(f"cadence must be >= 1 day: {cadence_days}")
        full = self.build(STUDY_START, STUDY_END, cadence_days)
        recent = self.build(RECENT_DAILY_START, STUDY_END, 1)
        return BuildReport(
            sorted(set(full.written) | set(recent.written)),
            sorted(set(full.skipped) | set(recent.skipped)),
            full.bytes_written + recent.bytes_written,
            full.segments + recent.segments,
            sorted(set(full.adopted) | set(recent.adopted)),
        )

    def open(self) -> MeasurementArchive:
        """Open the built archive for reading (self-healing enabled)."""
        return MeasurementArchive(
            self.directory, metrics=self.metrics, config=self.config
        )
