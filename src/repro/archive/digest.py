"""Canonical content digest over an archive directory.

:func:`archive_digest` hashes exactly the files that define the archive
— ``manifest.json`` plus every ``*.shard`` — in sorted filename order,
folding each name in with its bytes.  Everything else that may share
the directory (the follow journal, the event log, the status file,
quarantined shards) is deliberately excluded: live-mode bookkeeping
must never perturb the archive identity the crash-safety contract is
stated in.  Two archives are byte-identical **as archives** iff their
digests match, which is how the kill-and-resume chaos tests compare an
interrupted follow run against an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os

__all__ = ["archive_digest"]

#: The manifest filename (mirrors :mod:`repro.archive.manifest`).
_MANIFEST = "manifest.json"


def archive_digest(directory: str) -> str:
    """Hex SHA-256 over the manifest and every shard, name-folded.

    Missing manifests and empty directories hash deterministically too
    (to the digest of the empty selection), so a caller can checkpoint
    before the first day lands.
    """
    hasher = hashlib.sha256()
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        names = []
    for name in names:
        if name != _MANIFEST and not name.endswith(".shard"):
            continue
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        hasher.update(name.encode("utf-8"))
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                hasher.update(block)
    return hasher.hexdigest()
