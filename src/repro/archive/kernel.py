"""Columnar query kernel: archive sweeps without per-record objects.

The experiment layer's day reducers consume
:class:`~repro.measurement.fast.DailySnapshot` objects, which for an
archive-backed context means scattering shard columns over the
population and rebuilding a world for its epoch label tables — work
that dominates a warm query even though the shard bytes are hot in
memory.  This module is the fast path around that:

* :func:`summarize_snapshot` aggregates one snapshot into a
  :class:`~repro.archive.summary.DaySummary` using the *same*
  vectorised label/bincount operations the day reducers run (the code
  below mirrors :class:`~repro.core.reducers.FullSweepReducer` and
  :class:`~repro.core.reducers.RecentWindowReducer` line for line), so
  a summary replayed later is bit-identical to re-reducing the day.
  The archive builder calls this once per day and serialises the result
  into the shard's v3 summary block.
* :class:`ArchiveQueryKernel` answers the coarse longitudinal queries
  (Figures 1-5, headline, every ``series``) straight from those stored
  summaries: one partial file read per day, no per-domain columns, no
  world construction.  Days stored as format-v2 shards fall back to
  reducing the full shard on the fly (which does build the world), so
  old archives stay queryable.

The record-object path remains the oracle: the equivalence suite in
``tests/archive/test_kernel.py`` proves kernel results bit-identical to
record-path results for every figure the kernel serves.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.reducers import (
    FullSweepDayRecord,
    RecentDayRecord,
    _composition_counts,
)
from ..core.labels import (
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
    snapshot_ns_tld_labels,
)
from ..errors import ArchiveError
from ..measurement.fast import DailySnapshot
from ..timeline import DateLike, as_date
from .summary import DaySummary

__all__ = [
    "summarize_snapshot",
    "full_record_from_summary",
    "recent_record_from_summary",
    "ArchiveQueryKernel",
]


def summarize_snapshot(
    snapshot: DailySnapshot, chunk_domains: Optional[int] = None
) -> DaySummary:
    """Aggregate one day into its :class:`DaySummary`.

    Every count is produced by the exact operation the corresponding
    reducer runs — same label gathers, same ``bincount``/matmul over
    the same columns — which is what makes summary replay bit-identical
    to record-path reduction.

    With ``chunk_domains`` set, the measured set is processed in
    position chunks of at most that many domains and the per-chunk
    integer counts are merged additively — every aggregate here
    (composition triples, plan bincounts, subset label counts) is a sum
    over a partition of ``measured``, so the chunked result is equal by
    construction, not by rounding.  This is the bounded-memory path
    the streaming shard builder rides: the temporaries scale with the
    chunk, not the day.
    """
    measured = snapshot.measured
    count = len(measured)
    dns_labels = snapshot.epoch.dns_labels
    hosting_labels = snapshot.epoch.hosting_labels
    world = snapshot.world
    sanctioned = np.asarray(world.sanctioned_indices, dtype=np.int64)

    if chunk_domains is not None and chunk_domains < 1:
        raise ArchiveError(f"chunk_domains must be >= 1: {chunk_domains}")
    step = max(
        1, count if not chunk_domains else min(int(chunk_domains), count)
    )

    ns_triple = np.zeros(3, dtype=np.int64)
    host_triple = np.zeros(3, dtype=np.int64)
    tld_triple = np.zeros(3, dtype=np.int64)
    sanctioned_triple = np.zeros(3, dtype=np.int64)
    plan_counts = np.zeros(dns_labels.tld_membership.shape[0], dtype=np.int64)
    host_plan_counts = np.zeros(len(hosting_labels.asn_sets), dtype=np.int64)

    for lo in range(0, max(count, 1), step):
        chunk = measured[lo:lo + step]
        ns_triple += _composition_counts(
            snapshot_ns_geo_labels(snapshot, chunk)
        )
        host_triple += _composition_counts(
            snapshot_hosting_geo_labels(snapshot, chunk)
        )
        tld_triple += _composition_counts(
            snapshot_ns_tld_labels(snapshot, chunk)
        )
        # FullSweepReducer.reduce_day: per-TLD NS dependency counts
        # (the matmul against the membership matrix happens once, on
        # the merged plan histogram below).
        plan_counts += np.bincount(
            snapshot.dns_ids[chunk], minlength=len(plan_counts)
        )
        host_plan_counts += np.bincount(
            snapshot.hosting_ids[chunk], minlength=len(host_plan_counts)
        )
        # RecentWindowReducer's sanctioned subset: np.isin over a
        # chunk partition concatenates to np.isin over the whole
        # measured set, order preserved.
        subset = chunk[np.isin(chunk, sanctioned)]
        sanctioned_triple += _composition_counts(
            snapshot_ns_geo_labels(snapshot, subset)
        )

    per_tld = plan_counts @ dns_labels.tld_membership
    tld_counts = {
        tld: int(per_tld[col])
        for col, tld in enumerate(dns_labels.tld_names)
        if per_tld[col] > 0
    }

    # RecentWindowReducer.reduce_day generalised: instead of counting
    # only a caller-supplied tracked-ASN list, count every ASN any
    # hosting plan touches.  For a plan-membership matrix M this is the
    # same ``plan_counts @ M`` with one column per known ASN, so any
    # tracked subset projects out of it exactly.
    asn_counts: Dict[int, int] = {}
    for plan_id, plan_asns in enumerate(hosting_labels.asn_sets):
        plan_count = int(host_plan_counts[plan_id])
        if plan_count:
            for asn in plan_asns:
                asn_counts[asn] = asn_counts.get(asn, 0) + plan_count

    listed = len(world.sanctions.domains_listed_as_of(snapshot.date))

    return DaySummary(
        snapshot.date,
        snapshot.epoch.start_day,
        int(count),
        tuple(int(v) for v in ns_triple),
        tuple(int(v) for v in host_triple),
        tuple(int(v) for v in tld_triple),
        tld_counts,
        asn_counts,
        tuple(int(v) for v in sanctioned_triple),
        listed,
    )


def full_record_from_summary(summary: DaySummary) -> FullSweepDayRecord:
    """The :class:`FullSweepDayRecord` a summary replays to.

    ``label_cache_hit`` is set (the summary *is* the cache) and is
    excluded from record equality, exactly like parallel-sweep workers.
    """
    return FullSweepDayRecord(
        summary.date,
        summary.ns,
        summary.hosting,
        summary.tld,
        summary.measured_count,
        dict(summary.tld_counts),
        label_cache_hit=True,
    )


def recent_record_from_summary(
    summary: DaySummary, asns: Sequence[int]
) -> RecentDayRecord:
    """The :class:`RecentDayRecord` a summary replays to for ``asns``.

    The summary's ASN histogram covers every ASN any hosting plan
    touches, so projecting the tracked list out of it (absent means
    zero) matches the reducer's membership-matrix product exactly.
    """
    return RecentDayRecord(
        summary.date,
        summary.measured_count,
        {int(asn): summary.asn_counts.get(int(asn), 0) for asn in asns},
        summary.sanctioned,
        summary.listed_count,
        label_cache_hit=True,
    )


class ArchiveQueryKernel:
    """Serves day aggregates for one archive-backed collector.

    Stored v3 summaries are read directly (partial file reads through
    the archive's summary cache); v2 days fall back to the record path
    — collect the snapshot, reduce it with :func:`summarize_snapshot` —
    and memoise the result, so a legacy archive pays the slow path once
    per day per kernel.
    """

    def __init__(self, collector) -> None:
        self._collector = collector
        self._computed: Dict[_dt.date, DaySummary] = {}

    def day_summary(self, date: DateLike) -> DaySummary:
        """One day's summary: stored if the shard has one, else computed."""
        date_obj = as_date(date)
        summary = self._collector.archive.load_summary(date_obj)
        if summary is None:
            summary = self._computed.get(date_obj)
            if summary is None:
                summary = summarize_snapshot(self._collector.collect(date_obj))
                self._computed[date_obj] = summary
        return summary

    def sweep_summaries(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> List[DaySummary]:
        """Summaries for every ``step`` days in ``[start, end]``.

        Stored summary blocks are fetched through the archive's range
        read — a bounded parallel read when the archive was opened with
        ``readers > 1`` — and only days without a stored summary (v2
        shards) fall back to the serial compute-and-memoise path.
        """
        if step < 1:
            raise ArchiveError(f"sweep step must be >= 1 day: {step}")
        stored = self._collector.archive.load_summaries(start, end, step)
        day = as_date(start)
        summaries: List[DaySummary] = []
        for summary in stored:
            if summary is None:
                summary = self.day_summary(day)
            summaries.append(summary)
            day += _dt.timedelta(days=step)
        return summaries

    def full_sweep_records(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> List[FullSweepDayRecord]:
        """The five-year sweep's day records (Figures 1-3, headline)."""
        return [
            full_record_from_summary(summary)
            for summary in self.sweep_summaries(start, end, step)
        ]

    def recent_records(
        self, asns: Sequence[int], start: DateLike, end: DateLike, step: int = 1
    ) -> List[RecentDayRecord]:
        """The conflict-window day records (Figures 4 and 5)."""
        return [
            recent_record_from_summary(summary, asns)
            for summary in self.sweep_summaries(start, end, step)
        ]
