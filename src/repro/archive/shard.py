"""The binary day-shard format: one file per measured day.

A shard is everything the pipeline knows about one measurement day,
stored columnarly:

* the measured domain indices (fixed-width int32, decoded vectorised;
  outage days store the subsampled set, so replaying a shard replays
  the outage exactly);
* per-measured-domain DNS and hosting plan ids (the fast path's raw
  material — scattering them back over the population reconstructs a
  :class:`~repro.measurement.fast.DailySnapshot` bit-for-bit);
* a per-shard NS name pool plus a per-DNS-plan table of NS names and
  addresses (fleet hostnames repeat for thousands of domains, so the
  pool collapses the dominant string column);
* per-domain A-label names and sorted apex address runs — with the plan
  table these materialise every
  :class:`~repro.measurement.records.DomainMeasurement` of the day
  without touching a world.

Format version 3 stores two independently zlib-compressed blocks behind
a fixed header: a small **summary block** (the day's pre-aggregated
analysis counts, :mod:`repro.archive.summary`) followed by the columnar
payload.  The summary block carries its own CRC32 in the header, so a
coarse query can read and verify the first few hundred bytes of a shard
without ever touching — or decompressing — the per-domain columns.  The
header CRC32 still covers the header itself (with the CRC field zeroed)
followed by *both* uncompressed blocks, so a bit flip anywhere in the
file — including the date ordinal or record count in the header — is
caught before any value is trusted.  Version-2 shards (single payload,
no summary) remain readable; their summaries are recomputed on the fly
by the query kernel.  Writes are build-order independent and
byte-deterministic: the same day record always serialises to the same
bytes, which is what makes interrupted-then-resumed archive builds
byte-identical to uninterrupted ones.
"""

from __future__ import annotations

import datetime as _dt
import os
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..dns.name import DomainName
from ..errors import ArchiveCorruptError, ArchiveError, ArchiveStaleError
from ..ioutil import atomic_write_bytes
from ..measurement.records import DomainMeasurement
from .codec import (
    read_delta_run,
    read_int32_ndarray,
    read_string,
    read_svarint,
    read_uvarint,
    write_delta_run,
    write_int32_array,
    write_string,
    write_svarint,
    write_uvarint,
)
from .summary import DaySummary, decode_summary, encode_summary

__all__ = [
    "SHARD_MAGIC",
    "SHARD_VERSION",
    "DayShardRecord",
    "ShardProbe",
    "encode_shard",
    "write_shard",
    "read_shard",
    "read_summary",
    "probe_shard",
]

SHARD_MAGIC = b"REPROARC"
SHARD_VERSION = 3

#: Common prefix of every shard version: ``magic, version, flags`` —
#: enough to dispatch on the format before trusting anything else.
_PREFIX = struct.Struct("<8sHH")

#: v2: ``magic, version, flags, date ordinal, record count, crc32,
#: uncompressed payload length``.
_HEADER_V2 = struct.Struct("<8sHHIIIQ")

#: v3 appends ``compressed summary length, summary crc32`` so the
#: summary block can be located and verified from the header alone.
_HEADER_V3 = struct.Struct("<8sHHIIIQII")

#: Fixed compression level: determinism requires one canonical encoding.
_ZLIB_LEVEL = 6


class DayShardRecord:
    """One day's measurements in shard (column) form.

    ``measured``/``dns_ids``/``hosting_ids``/``domains``/``apex`` are
    parallel per-measured-domain columns; ``dns_plan_ns`` maps each DNS
    plan id appearing in ``dns_ids`` to its ``(ns_names, ns_addresses)``
    tuple for the day's infrastructure epoch.

    The three numeric columns are numpy arrays held at their final
    analysis dtypes — ``measured`` as int64 (it is used for fancy
    indexing over the population), the plan-id columns as int32 — so
    snapshot reconstruction and the columnar kernels consume them
    without any per-query conversion or copy.  ``summary`` carries the
    day's pre-aggregated :class:`~repro.archive.summary.DaySummary`
    when the shard stores one (format v3), else ``None``.
    """

    __slots__ = (
        "date",
        "epoch_start_day",
        "population_size",
        "measured",
        "dns_ids",
        "hosting_ids",
        "summary",
        "_dns_plan_ns",
        "_domains",
        "_apex",
        "_positions",
        "_tail",
    )

    def __init__(
        self,
        date: _dt.date,
        epoch_start_day: int,
        population_size: int,
        measured: Sequence[int],
        dns_ids: Sequence[int],
        hosting_ids: Sequence[int],
        dns_plan_ns: Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]],
        domains: Sequence[str],
        apex: Sequence[Tuple[int, ...]],
    ) -> None:
        count = len(measured)
        for name, column in (
            ("dns_ids", dns_ids),
            ("hosting_ids", hosting_ids),
            ("domains", domains),
            ("apex", apex),
        ):
            if len(column) != count:
                raise ArchiveError(
                    f"column {name!r} length {len(column)} != {count} measured"
                )
        missing = {int(p) for p in dns_ids} - set(dns_plan_ns)
        if missing:
            raise ArchiveError(f"dns plans missing from the shard table: {sorted(missing)}")
        self.date = date
        self.epoch_start_day = int(epoch_start_day)
        self.population_size = int(population_size)
        self.measured = np.asarray(measured, dtype=np.int64)
        self.dns_ids = np.asarray(dns_ids, dtype=np.int32)
        self.hosting_ids = np.asarray(hosting_ids, dtype=np.int32)
        self.summary: Optional[DaySummary] = None
        self._dns_plan_ns = {
            int(plan_id): (tuple(names), tuple(int(a) for a in addresses))
            for plan_id, (names, addresses) in dns_plan_ns.items()
        }
        self._domains = [str(d) for d in domains]
        self._apex = [tuple(int(a) for a in addresses) for addresses in apex]
        self._positions: Optional[Dict[int, int]] = None
        self._tail: Optional[Tuple[bytes, int]] = None

    # ------------------------------------------------------------------
    # Lazily-decoded columns
    # ------------------------------------------------------------------
    #
    # Reducer sweeps only ever read the three numeric columns above; the
    # NS plan table, domain names, and apex runs are needed solely to
    # materialise DomainMeasurement records.  A record decoded from disk
    # therefore keeps the undecoded payload tail and thaws these columns
    # on first access, which makes archive-backed sweeps pay for the
    # structural columns only.

    def _thaw(self) -> None:
        payload, offset = self._tail  # type: ignore[misc]
        view = memoryview(payload)
        count = len(self.measured)

        pool_size, offset = read_uvarint(view, offset)
        pool: List[str] = []
        for _ in range(pool_size):
            name, offset = read_string(view, offset)
            pool.append(name)

        plan_count, offset = read_uvarint(view, offset)
        dns_plan_ns: Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]] = {}
        for _ in range(plan_count):
            plan_id, offset = read_uvarint(view, offset)
            name_count, offset = read_uvarint(view, offset)
            names = []
            for _ in range(name_count):
                pool_id, offset = read_uvarint(view, offset)
                names.append(pool[pool_id])
            addresses, offset = read_delta_run(view, offset)
            dns_plan_ns[plan_id] = (tuple(names), tuple(addresses))

        domains: List[str] = []
        for _ in range(count):
            domain, offset = read_string(view, offset)
            domains.append(domain)
        apex: List[Tuple[int, ...]] = []
        for _ in range(count):
            addresses, offset = read_delta_run(view, offset)
            apex.append(tuple(addresses))
        if offset != len(view):
            raise ArchiveError(
                f"{len(view) - offset} trailing bytes in shard payload"
            )
        missing = set(np.unique(self.dns_ids).tolist()) - set(dns_plan_ns)
        if missing:
            raise ArchiveError(
                f"dns plans missing from the shard table: {sorted(missing)}"
            )
        self._dns_plan_ns = dns_plan_ns
        self._domains = domains
        self._apex = apex
        self._tail = None

    @property
    def dns_plan_ns(self) -> Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]]:
        """Per-DNS-plan ``(ns_names, ns_addresses)`` for the day's epoch."""
        if self._tail is not None:
            self._thaw()
        return self._dns_plan_ns

    @property
    def domains(self) -> List[str]:
        """Per-measured-domain A-label names."""
        if self._tail is not None:
            self._thaw()
        return self._domains

    @property
    def apex(self) -> List[Tuple[int, ...]]:
        """Per-measured-domain sorted apex address tuples."""
        if self._tail is not None:
            self._thaw()
        return self._apex

    # ------------------------------------------------------------------
    # Construction from a live snapshot
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot,
        apex_cache: Optional[Dict[Tuple[int, int], Tuple[int, ...]]] = None,
        plan_cache: Optional[Dict[Tuple[int, int], Tuple[Tuple[str, ...], Tuple[int, ...]]]] = None,
    ) -> "DayShardRecord":
        """Columnarise one :class:`DailySnapshot`.

        The caches are keyed by ``(domain_index, hosting_id)`` and
        ``(epoch_start_day, dns_id)``; assignments change rarely, so a
        builder that threads the same dicts through consecutive days
        materialises each plan/apex tuple once instead of once per day.
        """
        world = snapshot.world
        epoch = snapshot.epoch
        apex_cache = {} if apex_cache is None else apex_cache
        plan_cache = {} if plan_cache is None else plan_cache

        measured = [int(index) for index in snapshot.measured]
        dns_ids = [int(v) for v in snapshot.dns_ids[snapshot.measured]]
        hosting_ids = [int(v) for v in snapshot.hosting_ids[snapshot.measured]]

        dns_plan_ns: Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]] = {}
        for plan_id in sorted(set(dns_ids)):
            key = (epoch.start_day, plan_id)
            entry = plan_cache.get(key)
            if entry is None:
                names = tuple(
                    str(hostname)
                    for hostname in world.dns_plans.plan(plan_id).ns_hostnames
                )
                entry = (names, tuple(epoch.ns_addresses[name] for name in names))
                plan_cache[key] = entry
            dns_plan_ns[plan_id] = entry

        domains: List[str] = []
        apex: List[Tuple[int, ...]] = []
        for position, domain_index in enumerate(measured):
            domains.append(str(world.population.record(domain_index).name))
            key = (domain_index, hosting_ids[position])
            addresses = apex_cache.get(key)
            if addresses is None:
                addresses = tuple(
                    sorted(world.apex_addresses_for_plan(domain_index, key[1]))
                )
                apex_cache[key] = addresses
            apex.append(addresses)

        return cls(
            snapshot.date,
            epoch.start_day,
            len(snapshot.dns_ids),
            measured,
            dns_ids,
            hosting_ids,
            dns_plan_ns,
            domains,
            apex,
        )

    # ------------------------------------------------------------------
    # Record materialisation
    # ------------------------------------------------------------------

    def measurement_at(self, position: int) -> DomainMeasurement:
        """The :class:`DomainMeasurement` of the ``position``-th column entry."""
        names, addresses = self.dns_plan_ns[int(self.dns_ids[position])]
        return DomainMeasurement(
            self.date,
            DomainName.parse(self.domains[position]),
            names,
            addresses,
            self.apex[position],
            domain_index=int(self.measured[position]),
        )

    def measurement_for(self, domain_index: int) -> DomainMeasurement:
        """The record of one measured domain (by population index)."""
        if self._positions is None:
            self._positions = {
                int(index): position
                for position, index in enumerate(self.measured)
            }
        position = self._positions.get(int(domain_index))
        if position is None:
            raise ArchiveError(
                f"domain {domain_index} was not measured on {self.date}"
            )
        return self.measurement_at(position)

    def measurements(self) -> Iterator[DomainMeasurement]:
        """All of the day's records, in measured order."""
        for position in range(len(self.measured)):
            yield self.measurement_at(position)

    def key(self) -> Tuple:
        """Comparable content tuple (used by round-trip tests)."""
        return (
            self.date,
            self.epoch_start_day,
            self.population_size,
            tuple(self.measured.tolist()),
            tuple(self.dns_ids.tolist()),
            tuple(self.hosting_ids.tolist()),
            self.dns_plan_ns,
            self.domains,
            self.apex,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DayShardRecord):
            return NotImplemented
        return self.key() == other.key()

    def __repr__(self) -> str:
        return f"DayShardRecord({self.date}, {len(self.measured)} measured)"


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------

def _encode_prefix(record) -> bytearray:
    """The payload bytes ahead of the domain/apex columns.

    ``record`` is duck-typed: anything exposing ``epoch_start_day``,
    ``population_size``, the three numeric columns, and ``dns_plan_ns``
    works — both :class:`DayShardRecord` and the streaming writer's
    :class:`~repro.archive.stream.DayStream` encode their prefix here,
    which is what guarantees the two paths agree byte for byte.
    """
    buffer = bytearray()
    write_svarint(buffer, record.epoch_start_day)
    write_uvarint(buffer, record.population_size)
    # Structural columns are fixed-width so readers can decode them
    # vectorised; the string/apex columns stay varint-packed.
    write_int32_array(buffer, record.measured)
    write_int32_array(buffer, record.dns_ids)
    write_int32_array(buffer, record.hosting_ids)

    # NS name pool, first-seen over plans in id order (deterministic).
    pool: Dict[str, int] = {}
    plan_ids = sorted(record.dns_plan_ns)
    for plan_id in plan_ids:
        for name in record.dns_plan_ns[plan_id][0]:
            pool.setdefault(name, len(pool))
    write_uvarint(buffer, len(pool))
    for name in pool:
        write_string(buffer, name)

    write_uvarint(buffer, len(plan_ids))
    for plan_id in plan_ids:
        names, addresses = record.dns_plan_ns[plan_id]
        write_uvarint(buffer, plan_id)
        write_uvarint(buffer, len(names))
        for name in names:
            write_uvarint(buffer, pool[name])
        write_delta_run(buffer, addresses)
    return buffer


def _encode_payload(record: DayShardRecord) -> bytearray:
    buffer = _encode_prefix(record)
    for domain in record.domains:
        write_string(buffer, domain)
    for addresses in record.apex:
        write_delta_run(buffer, addresses)
    return buffer


def _decode_payload(date: _dt.date, count: int, payload: bytes) -> DayShardRecord:
    """Decode the structural columns; string/apex columns stay lazy.

    The payload has already passed its CRC check, so the undecoded tail
    is known intact — :meth:`DayShardRecord._thaw` parses it on first
    record materialisation.

    The three numeric columns decode vectorised and exactly once:
    ``measured`` widens to int64 (its final fancy-indexing dtype) in one
    ``astype``; the plan-id columns stay zero-copy read-only int32 views
    over the payload bytes, which the record keeps alive via ``_tail``.
    """
    view = memoryview(payload)
    offset = 0
    epoch_start_day, offset = read_svarint(view, offset)
    population_size, offset = read_uvarint(view, offset)
    measured32, offset = read_int32_ndarray(view, offset)
    if len(measured32) != count:
        raise ArchiveError(
            f"shard header claims {count} records, payload has {len(measured32)}"
        )
    dns_ids, offset = read_int32_ndarray(view, offset)
    hosting_ids, offset = read_int32_ndarray(view, offset)
    if len(dns_ids) != count or len(hosting_ids) != count:
        raise ArchiveError(
            f"shard id columns ({len(dns_ids)}/{len(hosting_ids)}) do not "
            f"match {count} records"
        )

    record = object.__new__(DayShardRecord)
    record.date = date
    record.epoch_start_day = epoch_start_day
    record.population_size = population_size
    record.measured = measured32.astype(np.int64)
    record.dns_ids = dns_ids
    record.hosting_ids = hosting_ids
    record.summary = None
    record._dns_plan_ns = {}
    record._domains = []
    record._apex = []
    record._positions = None
    record._tail = (payload, offset)
    return record


def _shard_crc_v2(
    flags: int, ordinal: int, count: int, payload_length: int, payload: bytes
) -> int:
    """v2 header-covering CRC32: header bytes with the CRC field zeroed,
    then the uncompressed payload — every stored header field (flags
    included) is part of the checksummed message."""
    zeroed = _HEADER_V2.pack(SHARD_MAGIC, 2, flags, ordinal, count, 0, payload_length)
    return zlib.crc32(payload, zlib.crc32(zeroed))


def _shard_crc_v3(
    flags: int,
    ordinal: int,
    count: int,
    payload_length: int,
    summary_blob_length: int,
    summary_crc: int,
    summary: bytes,
    payload: bytes,
) -> int:
    """v3 CRC32 over the zeroed header, then the uncompressed summary,
    then the uncompressed columns — both blocks and every header field
    (the summary's own length and CRC included) are covered."""
    zeroed = _HEADER_V3.pack(
        SHARD_MAGIC, 3, flags, ordinal, count, 0,
        payload_length, summary_blob_length, summary_crc,
    )
    return zlib.crc32(payload, zlib.crc32(summary, zlib.crc32(zeroed)))


def _decompress_block(blob: bytes, path: str, what: str) -> bytes:
    """Inflate one exactly-delimited zlib stream; reject slack bytes."""
    decompressor = zlib.decompressobj()
    try:
        data = decompressor.decompress(blob)
        data += decompressor.flush()
    except zlib.error as exc:
        raise ArchiveCorruptError(
            f"shard {path} {what} failed to decompress: {exc}"
        ) from exc
    if not decompressor.eof or decompressor.unused_data:
        raise ArchiveCorruptError(
            f"shard {path} {what} has trailing or truncated compressed data"
        )
    return data


def encode_shard(
    record: DayShardRecord, version: int = SHARD_VERSION
) -> Tuple[bytes, int]:
    """Serialise ``record`` to its canonical on-disk bytes.

    Returns ``(blob, crc32)``; the CRC covers the header (with its CRC
    field zeroed) plus every uncompressed block.  ``version=2`` emits
    the legacy single-block format byte-for-byte (used by tests to
    exercise the fallback path); version 3 additionally requires
    ``record.summary`` to be populated.
    """
    payload = bytes(_encode_payload(record))
    ordinal = record.date.toordinal()
    count = len(record.measured)
    if version == 2:
        crc = _shard_crc_v2(0, ordinal, count, len(payload), payload)
        header = _HEADER_V2.pack(
            SHARD_MAGIC, 2, 0, ordinal, count, crc, len(payload)
        )
        return header + zlib.compress(payload, _ZLIB_LEVEL), crc
    if version != 3:
        raise ArchiveError(f"cannot encode shard format version {version}")
    if record.summary is None:
        raise ArchiveError(
            f"format v3 shard for {record.date} requires a DaySummary"
        )
    summary = encode_summary(record.summary)
    summary_blob = zlib.compress(summary, _ZLIB_LEVEL)
    summary_crc = zlib.crc32(summary)
    crc = _shard_crc_v3(
        0, ordinal, count, len(payload),
        len(summary_blob), summary_crc, summary, payload,
    )
    header = _HEADER_V3.pack(
        SHARD_MAGIC, 3, 0, ordinal, count, crc,
        len(payload), len(summary_blob), summary_crc,
    )
    return header + summary_blob + zlib.compress(payload, _ZLIB_LEVEL), crc


def write_shard(
    path: str,
    record: DayShardRecord,
    faults=None,
    retries: int = 6,
    version: int = SHARD_VERSION,
) -> Tuple[int, int]:
    """Serialise ``record`` to ``path`` atomically.

    Returns ``(file_bytes, crc32)``.  The write goes through
    :func:`repro.ioutil.atomic_write_bytes` (same-directory temp file +
    ``os.replace`` with transient-error retry), so concurrent builder
    workers, injected faults, and interrupted builds never leave a torn
    shard behind the final name.
    """
    blob, crc = encode_shard(record, version=version)
    atomic_write_bytes(path, blob, faults=faults, site="shard.write", retries=retries)
    return len(blob), crc


def _verify_shard_blob(
    path: str, blob: bytes, expected_crc: Optional[int]
) -> Tuple[int, _dt.date, int, int, Optional[bytes], bytes]:
    """Verify one in-memory shard blob end to end.

    Shared by :func:`read_shard` and :func:`probe_shard`: checks the
    magic, version, manifest CRC, summary CRC (v3), and the
    whole-shard CRC over the decompressed blocks.  Returns
    ``(version, date, count, crc, summary_bytes, payload_bytes)`` —
    ``summary_bytes`` is ``None`` for v2 shards.
    """
    if len(blob) < _PREFIX.size:
        raise ArchiveCorruptError(f"shard {path} is shorter than its header")
    magic, version, _ = _PREFIX.unpack_from(blob)
    if magic != SHARD_MAGIC:
        raise ArchiveCorruptError(f"shard {path} has bad magic {magic!r}")

    if version == 2:
        if len(blob) < _HEADER_V2.size:
            raise ArchiveCorruptError(f"shard {path} is shorter than its header")
        (magic, version, flags, ordinal, count, crc,
         payload_length) = _HEADER_V2.unpack_from(blob)
        if expected_crc is not None and crc != expected_crc:
            raise ArchiveStaleError(
                f"shard {path} crc {crc:#010x} does not match the manifest"
            )
        payload = _decompress_block(blob[_HEADER_V2.size:], path, "payload")
        if len(payload) != payload_length:
            raise ArchiveCorruptError(
                f"shard {path} payload length {len(payload)} != header "
                f"{payload_length}"
            )
        if _shard_crc_v2(flags, ordinal, count, payload_length, payload) != crc:
            raise ArchiveCorruptError(f"shard {path} is corrupt (crc mismatch)")
        return 2, _dt.date.fromordinal(ordinal), count, crc, None, payload

    if version != 3:
        raise ArchiveError(
            f"shard {path} has format version {version}, expected <= {SHARD_VERSION}"
        )
    if len(blob) < _HEADER_V3.size:
        raise ArchiveCorruptError(f"shard {path} is shorter than its header")
    (magic, version, flags, ordinal, count, crc, payload_length,
     summary_blob_length, summary_crc) = _HEADER_V3.unpack_from(blob)
    if expected_crc is not None and crc != expected_crc:
        raise ArchiveStaleError(
            f"shard {path} crc {crc:#010x} does not match the manifest"
        )
    columns_start = _HEADER_V3.size + summary_blob_length
    if len(blob) < columns_start:
        raise ArchiveCorruptError(
            f"shard {path} is shorter than its summary block"
        )
    summary = _decompress_block(
        blob[_HEADER_V3.size:columns_start], path, "summary block"
    )
    if zlib.crc32(summary) != summary_crc:
        raise ArchiveCorruptError(
            f"shard {path} summary block is corrupt (crc mismatch)"
        )
    payload = _decompress_block(blob[columns_start:], path, "payload")
    if len(payload) != payload_length:
        raise ArchiveCorruptError(
            f"shard {path} payload length {len(payload)} != header {payload_length}"
        )
    if _shard_crc_v3(
        flags, ordinal, count, payload_length,
        summary_blob_length, summary_crc, summary, payload,
    ) != crc:
        raise ArchiveCorruptError(f"shard {path} is corrupt (crc mismatch)")
    return 3, _dt.date.fromordinal(ordinal), count, crc, summary, payload


def read_shard(path: str, expected_crc: Optional[int] = None) -> DayShardRecord:
    """Load and verify one shard; raises :class:`ArchiveError` on damage.

    The failure is classified by subclass: damaged bytes raise
    :class:`ArchiveCorruptError`; a healthy shard that disagrees with
    the manifest's expected CRC raises :class:`ArchiveStaleError`.
    Both format versions are readable; a v3 record carries its decoded
    :class:`~repro.archive.summary.DaySummary` on ``record.summary``.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise ArchiveCorruptError(f"cannot read shard {path}: {exc}") from exc
    version, date, count, _, summary, payload = _verify_shard_blob(
        path, blob, expected_crc
    )
    record = _decode_payload(date, count, payload)
    if version == 3:
        record.summary = decode_summary(date, summary)
    return record


class ShardProbe:
    """Verified identity of one on-disk shard, without column decode.

    What orphan adoption needs to trust a shard left behind by an
    interrupted build: the full-file CRC has passed, and the fields a
    manifest entry records (plus the population size, which guards
    against adopting a shard from a different-scale scenario) are
    decoded from the verified bytes.
    """

    __slots__ = (
        "date", "records", "crc32", "file_bytes",
        "population_size", "epoch_start_day", "version",
    )

    def __init__(
        self,
        date: _dt.date,
        records: int,
        crc32: int,
        file_bytes: int,
        population_size: int,
        epoch_start_day: int,
        version: int,
    ) -> None:
        self.date = date
        self.records = records
        self.crc32 = crc32
        self.file_bytes = file_bytes
        self.population_size = population_size
        self.epoch_start_day = epoch_start_day
        self.version = version

    def __repr__(self) -> str:
        return f"ShardProbe({self.date}, {self.records} records, v{self.version})"


def probe_shard(path: str) -> ShardProbe:
    """Fully verify one shard file and return its identity.

    Runs the same integrity checks as :func:`read_shard` (magic,
    version, summary CRC, whole-shard CRC over the decompressed
    blocks) but decodes only the tiny payload prefix — no column
    arrays, no string thaw.  Raises the same classified
    :class:`ArchiveError` subclasses on damage.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise ArchiveCorruptError(f"cannot read shard {path}: {exc}") from exc
    version, date, count, crc, _, payload = _verify_shard_blob(path, blob, None)
    view = memoryview(payload)
    epoch_start_day, offset = read_svarint(view, 0)
    population_size, _ = read_uvarint(view, offset)
    return ShardProbe(
        date, count, crc, size, population_size, epoch_start_day, version
    )


def read_summary(
    path: str, expected_crc: Optional[int] = None
) -> Tuple[Optional[DaySummary], int]:
    """Read only a shard's pre-aggregated summary, if it stores one.

    Returns ``(summary, bytes_read)``.  This is the coarse-query fast
    path: it reads the fixed header plus the compressed summary block —
    a few hundred bytes — and never touches the per-domain columns.  A
    v2 shard has no summary block, so the result is ``(None, ...)`` and
    the caller falls back to reducing the full shard.  ``expected_crc``
    is checked against the header's whole-shard CRC (the manifest value)
    so a stale or swapped file is refused before its summary is trusted;
    the summary bytes themselves are verified against the header's
    dedicated summary CRC.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER_V3.size)
            if len(head) < _PREFIX.size:
                raise ArchiveCorruptError(
                    f"shard {path} is shorter than its header"
                )
            magic, version, _ = _PREFIX.unpack_from(head)
            if magic != SHARD_MAGIC:
                raise ArchiveCorruptError(f"shard {path} has bad magic {magic!r}")
            if version == 2:
                return None, len(head)
            if version != 3:
                raise ArchiveError(
                    f"shard {path} has format version {version}, "
                    f"expected <= {SHARD_VERSION}"
                )
            if len(head) < _HEADER_V3.size:
                raise ArchiveCorruptError(
                    f"shard {path} is shorter than its header"
                )
            (magic, version, flags, ordinal, count, crc, payload_length,
             summary_blob_length, summary_crc) = _HEADER_V3.unpack(head)
            if expected_crc is not None and crc != expected_crc:
                raise ArchiveStaleError(
                    f"shard {path} crc {crc:#010x} does not match the manifest"
                )
            summary_blob = handle.read(summary_blob_length)
    except OSError as exc:
        raise ArchiveCorruptError(f"cannot read shard {path}: {exc}") from exc
    if len(summary_blob) != summary_blob_length:
        raise ArchiveCorruptError(
            f"shard {path} is shorter than its summary block"
        )
    summary = _decompress_block(summary_blob, path, "summary block")
    if zlib.crc32(summary) != summary_crc:
        raise ArchiveCorruptError(
            f"shard {path} summary block is corrupt (crc mismatch)"
        )
    return (
        decode_summary(_dt.date.fromordinal(ordinal), summary),
        _HEADER_V3.size + summary_blob_length,
    )
