"""Binary encoding primitives for archive day shards.

Everything a shard stores reduces to three encodings:

* **uvarint** — LEB128 unsigned varints (7 payload bits per byte);
* **zigzag** — signed-to-unsigned mapping so small negative deltas stay
  one byte;
* **delta runs** — integer sequences stored as a zigzag-encoded first
  value followed by zigzag deltas, which collapses sorted index and
  address columns to ~1 byte per element.

Strings (domain names, NS host names) are length-prefixed UTF-8; NS
names additionally go through a per-shard pool because the same fleet
hostnames repeat for thousands of domains.

All functions operate on ``bytearray``/``memoryview`` so the shard
writer can assemble one payload buffer and compress it in a single
pass.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ArchiveError

__all__ = [
    "write_uvarint",
    "read_uvarint",
    "zigzag",
    "unzigzag",
    "write_svarint",
    "read_svarint",
    "write_delta_run",
    "read_delta_run",
    "write_string",
    "read_string",
    "write_int32_array",
    "read_int32_array",
    "read_int32_ndarray",
    "crc32_combine",
]


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append one unsigned LEB128 varint."""
    if value < 0:
        raise ArchiveError(f"uvarint cannot encode negative value: {value}")
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def read_uvarint(view: memoryview, offset: int) -> Tuple[int, int]:
    """Read one uvarint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    length = len(view)
    while True:
        if offset >= length:
            raise ArchiveError("truncated varint in shard payload")
        byte = view[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 70:
            raise ArchiveError("varint longer than 10 bytes in shard payload")


def zigzag(value: int) -> int:
    """Map a signed int to an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def write_svarint(buffer: bytearray, value: int) -> None:
    """Append one zigzag-encoded signed varint."""
    write_uvarint(buffer, zigzag(value))


def read_svarint(view: memoryview, offset: int) -> Tuple[int, int]:
    """Read one signed (zigzag) varint; returns ``(value, next_offset)``."""
    raw, offset = read_uvarint(view, offset)
    return unzigzag(raw), offset


def write_delta_run(buffer: bytearray, values: Sequence[int]) -> None:
    """Append ``len, first, delta...`` for one integer sequence.

    Deltas are zigzag-encoded, so the sequence need not be sorted —
    sorted runs simply compress best.  Order is preserved exactly.
    """
    write_uvarint(buffer, len(values))
    previous = 0
    for value in values:
        value = int(value)
        write_svarint(buffer, value - previous)
        previous = value


def read_delta_run(view: memoryview, offset: int) -> Tuple[List[int], int]:
    """Read one delta run; returns ``(values, next_offset)``."""
    count, offset = read_uvarint(view, offset)
    values: List[int] = []
    previous = 0
    for _ in range(count):
        delta, offset = read_svarint(view, offset)
        previous += delta
        values.append(previous)
    return values, offset


def write_int32_array(buffer: bytearray, values: Sequence[int]) -> None:
    """Append ``len`` plus a little-endian int32 array.

    Fixed-width columns decode through one vectorised ``np.frombuffer``
    instead of a per-value Python loop; zlib recovers most of the size
    difference against varints.  Values must fit in int32.
    """
    array = np.asarray(values)
    if array.dtype != np.int32:
        array = np.asarray(array, dtype=np.int64)
        if array.size and (
            array.max(initial=0) > np.iinfo(np.int32).max
            or array.min(initial=0) < np.iinfo(np.int32).min
        ):
            raise ArchiveError("int32 column value out of range")
    write_uvarint(buffer, array.size)
    buffer.extend(array.astype("<i4", copy=False).tobytes())


def read_int32_array(view: memoryview, offset: int) -> Tuple[List[int], int]:
    """Read one int32 array; returns ``(values, next_offset)``."""
    values, end = read_int32_ndarray(view, offset)
    return values.tolist(), end


def read_int32_ndarray(view: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    """Read one int32 array as a zero-copy (read-only) ndarray view.

    The returned array aliases the payload buffer, so it costs no copy
    and no dtype conversion — shard columns decoded through here are
    already in the dtype the analysis kernels consume.
    """
    count, offset = read_uvarint(view, offset)
    end = offset + 4 * count
    if end > len(view):
        raise ArchiveError("truncated int32 array in shard payload")
    values = np.frombuffer(view[offset:end], dtype="<i4")
    return values, end


# ----------------------------------------------------------------------
# CRC-32 combination
# ----------------------------------------------------------------------
#
# The v3 shard CRC folds the (zeroed) header in *first*, but the header
# stores the uncompressed payload length — which a streaming writer only
# knows after the last chunk.  crc32_combine() resolves the cycle: the
# payload's CRC is accumulated independently from zero while chunks
# stream out, and once the length is known the header+summary prefix CRC
# is combined with it as if the two messages had been one.  This is
# zlib's crc32_combine (GF(2) matrix exponentiation over the CRC-32
# polynomial), which CPython's zlib module does not expose.

#: CRC-32 polynomial, reflected form.
_CRC32_POLY = 0xEDB88320


def _gf2_matrix_times(matrix: Sequence[int], vector: int) -> int:
    """Multiply a GF(2) 32x32 matrix (list of column ints) by a vector."""
    result = 0
    index = 0
    while vector:
        if vector & 1:
            result ^= matrix[index]
        vector >>= 1
        index += 1
    return result


def _gf2_matrix_square(square: List[int], matrix: Sequence[int]) -> None:
    """``square = matrix * matrix`` over GF(2)."""
    for n in range(32):
        square[n] = _gf2_matrix_times(matrix, matrix[n])


def crc32_combine(crc1: int, crc2: int, length2: int) -> int:
    """CRC-32 of ``A + B`` given ``crc32(A)``, ``crc32(B)``, ``len(B)``.

    Equivalent to ``zlib.crc32(B, zlib.crc32(A))`` without needing the
    bytes of either message: ``crc1`` is advanced through ``length2``
    zero bytes by repeated matrix squaring (O(log length2) GF(2)
    products), then xor-ed with ``crc2``.
    """
    if length2 < 0:
        raise ArchiveError(f"crc32_combine length must be >= 0: {length2}")
    if length2 == 0:
        return crc1 & 0xFFFFFFFF
    crc1 &= 0xFFFFFFFF
    crc2 &= 0xFFFFFFFF

    # Operator for one zero bit: the polynomial in row 0, then a shift
    # matrix (bit n of the CRC moves to bit n-1).
    odd = [0] * 32
    odd[0] = _CRC32_POLY
    row = 1
    for n in range(1, 32):
        odd[n] = row
        row <<= 1
    even = [0] * 32
    _gf2_matrix_square(even, odd)   # two zero bits
    _gf2_matrix_square(odd, even)   # four zero bits

    # Apply length2 zero *bytes*: each squaring doubles the zero count
    # (the first loop iteration's square makes even = one zero byte).
    while True:
        _gf2_matrix_square(even, odd)
        if length2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        length2 >>= 1
        if not length2:
            break
        _gf2_matrix_square(odd, even)
        if length2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        length2 >>= 1
        if not length2:
            break
    return (crc1 ^ crc2) & 0xFFFFFFFF


def write_string(buffer: bytearray, text: str) -> None:
    """Append one length-prefixed UTF-8 string."""
    data = text.encode("utf-8")
    write_uvarint(buffer, len(data))
    buffer.extend(data)


def read_string(view: memoryview, offset: int) -> Tuple[str, int]:
    """Read one length-prefixed UTF-8 string; returns ``(text, next_offset)``."""
    length, offset = read_uvarint(view, offset)
    end = offset + length
    if end > len(view):
        raise ArchiveError("truncated string in shard payload")
    return bytes(view[offset:end]).decode("utf-8"), end
