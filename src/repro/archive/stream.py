"""Bounded-memory streaming shard builds.

The whole-day path (:func:`repro.archive.shard.encode_shard`)
materialises every per-domain Python object of a day — the full domain
string list, every apex tuple, and one contiguous payload buffer —
before a byte reaches disk.  At 1:250 that is noise; at paper scale
(11.7M domains, §2 of the source paper) it is gigabytes of transient
Python objects per day.  This module is the streaming alternative:

* :class:`DayStream` presents one day's shard content *lazily* — the
  numeric columns and NS plan table up front (they are small and the
  payload prefix needs them), the domain and apex columns as
  position-addressed chunk encoders that materialise nothing outside
  the requested ``[lo, hi)`` window;
* :func:`write_shard_stream` drives a ``zlib.compressobj`` over the
  prefix plus bounded domain/apex chunks, tracks the payload CRC as it
  goes, and — because the v3 header CRC folds the header in *first*,
  and the header stores the payload length that is only known at the
  end — finishes with :func:`~repro.archive.codec.crc32_combine` and
  patches the real header into the temp file before the atomic rename.

Byte-identity with the whole-day path is structural, not luck: the
prefix bytes come from the very same :func:`_encode_prefix` the one-shot
encoder uses, chunk boundaries fall between codec fields (a
length-prefixed string or delta run is never split), and a
``compressobj`` fed any partition of the payload emits the same bytes
as one-shot ``zlib.compress`` at the same level.  The equivalence is
proven per-file in tier-1 (``tests/archive/test_streaming_equivalence``,
property-based over chunk sizes and ``.рф``/punycode populations) and
end-to-end over manifests in ``tests/archive/test_builder``.
"""

from __future__ import annotations

import os
import time
import zlib
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ArchiveError, RecoveryError
from ..ioutil import backoff_seconds
from .codec import crc32_combine, write_delta_run, write_string
from .shard import (
    _HEADER_V3,
    _ZLIB_LEVEL,
    SHARD_MAGIC,
    _encode_prefix,
    read_shard,
)
from .summary import DaySummary, encode_summary

__all__ = ["DEFAULT_CHUNK_DOMAINS", "DayStream", "write_shard_stream"]

#: Default positions per streamed chunk when a caller enables chunking
#: without picking a size: small enough that a chunk's Python strings
#: and encode buffer stay in the tens of megabytes at any scale.
DEFAULT_CHUNK_DOMAINS = 50_000


class DayStream:
    """One day's shard content, domain columns addressable by position.

    Carries the same small state a :class:`DayShardRecord` holds up
    front (date, epoch, numeric columns, NS plan table, summary) but
    replaces the materialised ``domains``/``apex`` lists with
    per-position callables, so a writer can pull any ``[lo, hi)`` chunk
    without the rest of the day existing as Python objects.
    """

    __slots__ = (
        "date",
        "epoch_start_day",
        "population_size",
        "measured",
        "dns_ids",
        "hosting_ids",
        "dns_plan_ns",
        "summary",
        "_domain_at",
        "_apex_at",
    )

    def __init__(
        self,
        date,
        epoch_start_day: int,
        population_size: int,
        measured,
        dns_ids,
        hosting_ids,
        dns_plan_ns: Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]],
        summary: DaySummary,
        domain_at: Callable[[int], str],
        apex_at: Callable[[int], Tuple[int, ...]],
    ) -> None:
        self.date = date
        self.epoch_start_day = int(epoch_start_day)
        self.population_size = int(population_size)
        self.measured = np.asarray(measured, dtype=np.int64)
        self.dns_ids = np.asarray(dns_ids, dtype=np.int32)
        self.hosting_ids = np.asarray(hosting_ids, dtype=np.int32)
        self.dns_plan_ns = {
            int(plan_id): (tuple(names), tuple(int(a) for a in addresses))
            for plan_id, (names, addresses) in dns_plan_ns.items()
        }
        self.summary = summary
        self._domain_at = domain_at
        self._apex_at = apex_at

    def __len__(self) -> int:
        return len(self.measured)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot,
        apex_cache: Optional[Dict[Tuple[int, int], Tuple[int, ...]]] = None,
        plan_cache=None,
        chunk_domains: Optional[int] = None,
    ) -> "DayStream":
        """Stream view of one live :class:`DailySnapshot`.

        Mirrors :meth:`DayShardRecord.from_snapshot` for everything
        small (numeric columns, plan table, caches) but defers domain
        names and apex tuples to per-position lookups against the
        world, so nothing per-domain outlives the chunk being encoded.
        The summary is aggregated through the chunked
        :func:`~repro.archive.kernel.summarize_snapshot` path with the
        same ``chunk_domains`` bound.
        """
        from .kernel import summarize_snapshot

        world = snapshot.world
        epoch = snapshot.epoch
        apex_cache = {} if apex_cache is None else apex_cache
        plan_cache = {} if plan_cache is None else plan_cache

        measured = np.asarray(snapshot.measured, dtype=np.int64)
        dns_ids = np.asarray(
            snapshot.dns_ids[snapshot.measured], dtype=np.int32
        )
        hosting_ids = np.asarray(
            snapshot.hosting_ids[snapshot.measured], dtype=np.int32
        )

        dns_plan_ns: Dict[int, Tuple[Tuple[str, ...], Tuple[int, ...]]] = {}
        for plan_id in sorted(int(v) for v in np.unique(dns_ids)):
            key = (epoch.start_day, plan_id)
            entry = plan_cache.get(key)
            if entry is None:
                names = tuple(
                    str(hostname)
                    for hostname in world.dns_plans.plan(plan_id).ns_hostnames
                )
                entry = (names, tuple(epoch.ns_addresses[name] for name in names))
                plan_cache[key] = entry
            dns_plan_ns[plan_id] = entry

        def domain_at(position: int) -> str:
            return str(world.population.record(int(measured[position])).name)

        def apex_at(position: int) -> Tuple[int, ...]:
            key = (int(measured[position]), int(hosting_ids[position]))
            addresses = apex_cache.get(key)
            if addresses is None:
                addresses = tuple(
                    sorted(world.apex_addresses_for_plan(key[0], key[1]))
                )
                apex_cache[key] = addresses
            return addresses

        return cls(
            snapshot.date,
            epoch.start_day,
            len(snapshot.dns_ids),
            measured,
            dns_ids,
            hosting_ids,
            dns_plan_ns,
            summarize_snapshot(snapshot, chunk_domains=chunk_domains),
            domain_at,
            apex_at,
        )

    @classmethod
    def from_record(cls, record) -> "DayStream":
        """Stream view of a materialised :class:`DayShardRecord`.

        Used by the equivalence tests to stream synthetic populations
        (punycode domains, hand-built apex runs) that never came from a
        world.  The record must carry a summary (shard format v3).
        """
        if record.summary is None:
            raise ArchiveError(
                f"streaming a record for {record.date} requires a DaySummary"
            )
        domains = record.domains
        apex = record.apex
        return cls(
            record.date,
            record.epoch_start_day,
            record.population_size,
            record.measured,
            record.dns_ids,
            record.hosting_ids,
            record.dns_plan_ns,
            record.summary,
            domains.__getitem__,
            apex.__getitem__,
        )

    # ------------------------------------------------------------------
    # Chunk encoders
    # ------------------------------------------------------------------

    def domains_chunk(self, lo: int, hi: int) -> bytes:
        """Encoded domain-name column for positions ``[lo, hi)``."""
        buffer = bytearray()
        domain_at = self._domain_at
        for position in range(lo, hi):
            write_string(buffer, domain_at(position))
        return bytes(buffer)

    def apex_chunk(self, lo: int, hi: int) -> bytes:
        """Encoded apex delta-run column for positions ``[lo, hi)``."""
        buffer = bytearray()
        apex_at = self._apex_at
        for position in range(lo, hi):
            write_delta_run(buffer, apex_at(position))
        return bytes(buffer)

    def __repr__(self) -> str:
        return f"DayStream({self.date}, {len(self.measured)} measured)"


#: Prefix slice bound: the numeric-column prefix is O(day) (12 bytes a
#: domain), so it is fed to the compressor in windows rather than as
#: one whole-prefix copy on top of its build buffer.
_PREFIX_SLICE = 1 << 18


def _stream_pieces(stream: DayStream, chunk_domains: int):
    """Yield the uncompressed payload pieces, prefix first.

    Column order matches :func:`~repro.archive.shard._encode_payload`
    exactly: prefix, then every domain string, then every apex run —
    two position passes, each in bounded chunks.  Piece boundaries are
    invisible to the compressor and the running CRC, so slicing the
    prefix changes nothing but the transient footprint.
    """
    prefix = _encode_prefix(stream)
    view = memoryview(prefix)
    for lo in range(0, len(prefix), _PREFIX_SLICE):
        yield bytes(view[lo:lo + _PREFIX_SLICE])
    del view, prefix
    count = len(stream)
    for lo in range(0, count, chunk_domains):
        yield stream.domains_chunk(lo, min(lo + chunk_domains, count))
    for lo in range(0, count, chunk_domains):
        yield stream.apex_chunk(lo, min(lo + chunk_domains, count))


def write_shard_stream(
    path: str,
    stream: DayStream,
    chunk_domains: Optional[int] = None,
    faults=None,
    retries: int = 6,
    backoff: float = 0.01,
) -> Tuple[int, int]:
    """Stream one day to ``path``; returns ``(file_bytes, crc32)``.

    Produces a file byte-identical to ``write_shard`` of the equivalent
    materialised record, without ever holding the whole payload (or the
    whole compressed blob) in memory: chunks are compressed as they are
    produced, the payload CRC accumulates alongside, and the header —
    whose CRC field covers a message *starting with* the header itself
    — is computed at the end via CRC combination and patched over the
    placeholder before the atomic ``os.replace``.

    Fault discipline mirrors :func:`repro.ioutil.atomic_write_bytes`:
    per-attempt keys re-roll decisions, ``shard.write`` fires mid-file
    (a torn temp file, never a torn final), ``shard.write.bytes`` can
    corrupt any streamed piece, and when a plan is active the temp file
    is re-verified (a full CRC-checked read) before the rename.  The
    read-back verify is the one step that is not bounded-memory; it
    only runs under fault injection.
    """
    if chunk_domains is None:
        chunk_domains = DEFAULT_CHUNK_DOMAINS
    if chunk_domains < 1:
        raise ArchiveError(f"chunk_domains must be >= 1: {chunk_domains}")
    summary = encode_summary(stream.summary)
    summary_blob = zlib.compress(summary, _ZLIB_LEVEL)
    summary_crc = zlib.crc32(summary)
    ordinal = stream.date.toordinal()
    count = len(stream)
    placeholder = _HEADER_V3.pack(
        SHARD_MAGIC, 3, 0, ordinal, count, 0, 0, len(summary_blob), summary_crc
    )

    name = os.path.basename(path)
    temp_path = f"{path}.tmp.{os.getpid()}"
    for attempt in range(retries + 1):
        key = f"{name}#{attempt}"
        try:
            try:
                file_bytes = _HEADER_V3.size
                payload_length = 0
                payload_crc = 0
                compressor = zlib.compressobj(_ZLIB_LEVEL)
                with open(temp_path, "wb") as handle:
                    handle.write(placeholder)
                    handle.write(summary_blob)
                    file_bytes += len(summary_blob)
                    if faults is not None:
                        # Mid-write fault point: header and summary are
                        # down, no column bytes yet — a torn temp file.
                        faults.check("shard.write", key)
                    for piece_index, piece in enumerate(
                        _stream_pieces(stream, chunk_domains)
                    ):
                        payload_length += len(piece)
                        payload_crc = zlib.crc32(piece, payload_crc)
                        if faults is not None:
                            piece = faults.corrupt_bytes(
                                "shard.write.bytes", f"{key}/{piece_index}", piece
                            )
                        compressed = compressor.compress(piece)
                        if compressed:
                            handle.write(compressed)
                            file_bytes += len(compressed)
                    tail = compressor.flush()
                    handle.write(tail)
                    file_bytes += len(tail)
                    # The header CRC covers zeroed-header || summary ||
                    # payload; the first two are known only now that
                    # payload_length is final, so combine their CRC with
                    # the independently-streamed payload CRC.
                    zeroed = _HEADER_V3.pack(
                        SHARD_MAGIC, 3, 0, ordinal, count, 0,
                        payload_length, len(summary_blob), summary_crc,
                    )
                    crc = crc32_combine(
                        zlib.crc32(summary, zlib.crc32(zeroed)),
                        payload_crc,
                        payload_length,
                    )
                    handle.seek(0)
                    handle.write(
                        _HEADER_V3.pack(
                            SHARD_MAGIC, 3, 0, ordinal, count, crc,
                            payload_length, len(summary_blob), summary_crc,
                        )
                    )
                if faults is not None:
                    # Read-back verify: a corrupted piece compressed
                    # into the temp file fails its CRC here, while the
                    # final name still holds the previous good version.
                    verified = read_shard(temp_path, expected_crc=crc)
                    if verified.date != stream.date:
                        raise ArchiveError(
                            f"read-back verify failed for {path} "
                            f"(attempt {attempt})"
                        )
                os.replace(temp_path, path)
            finally:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
            return file_bytes, crc
        except (OSError, ArchiveError) as exc:
            if attempt >= retries:
                raise RecoveryError(
                    f"could not write {path} after {retries + 1} attempts: {exc}"
                ) from exc
            time.sleep(backoff_seconds(attempt, backoff))
    raise AssertionError("unreachable")  # pragma: no cover
