"""The persistent measurement archive.

OpenINTEL-style pipelines collect measurements once and query them many
times; this package is that storage layer for the reproduction.  A
measurement archive is a directory of compressed, CRC-checked binary
day shards (:mod:`repro.archive.shard`) described by a versioned,
scenario-fingerprinted manifest (:mod:`repro.archive.manifest`).
:class:`ArchiveBuilder` fills it incrementally through the parallel
sweep engine; :class:`ArchiveCollector` serves it back through the
standard collector interface, making every experiment an archive read
instead of a re-simulation.
"""

from .builder import (
    ArchiveBuilder,
    ArchiveShardReducer,
    BuildReport,
    RECENT_DAILY_START,
    shard_filename,
    standard_plan_dates,
)
from .digest import archive_digest
from .kernel import ArchiveQueryKernel, summarize_snapshot
from .manifest import Manifest, scenario_fingerprint
from .shard import (
    DayShardRecord,
    ShardProbe,
    probe_shard,
    read_shard,
    read_summary,
    write_shard,
)
from .store import ArchiveCollector, ArchivedSnapshot, MeasurementArchive
from .stream import DayStream, write_shard_stream
from .summary import DaySummary

__all__ = [
    "ArchiveBuilder",
    "ArchiveShardReducer",
    "ArchiveQueryKernel",
    "BuildReport",
    "archive_digest",
    "RECENT_DAILY_START",
    "Manifest",
    "scenario_fingerprint",
    "DayShardRecord",
    "DayStream",
    "DaySummary",
    "ShardProbe",
    "probe_shard",
    "read_shard",
    "read_summary",
    "summarize_snapshot",
    "write_shard",
    "write_shard_stream",
    "ArchiveCollector",
    "ArchivedSnapshot",
    "MeasurementArchive",
    "shard_filename",
    "standard_plan_dates",
]
