"""Per-day pre-aggregated shard summaries (shard format v3).

A :class:`DaySummary` is everything the coarse longitudinal queries
(Figures 1-5, the headline stats, every ``series`` query) need from one
measurement day, aggregated once at build time:

* the three full/part/non composition triples (NS geography, hosting
  geography, NS TLD dependency);
* the per-TLD domain counts behind the TLD-share series;
* the per-ASN hosting counts over **every** ASN any hosting plan
  touches (a superset of any tracked-provider list, so Figure 4 style
  queries never depend on which ASNs the reader happens to track);
* the sanctioned-subset NS composition and the sanctions-list size.

Summaries are serialised with the shard codec primitives into their own
independently-compressed block ahead of the domain-level columns, so a
reader can answer a coarse query from the first few hundred bytes of a
shard file without decompressing — or even reading — the per-domain
data.  The encoding is canonical (sorted keys, fixed field order): the
same day always serialises to the same bytes, preserving the archive's
shard-byte determinism.

The numbers themselves are produced by the same vectorised label
operations the day reducers run (see
:func:`repro.archive.kernel.summarize_snapshot`), so replaying a
summary is bit-identical to re-reducing the day's records.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Tuple

from ..errors import ArchiveError
from .codec import (
    read_string,
    read_svarint,
    read_uvarint,
    write_string,
    write_svarint,
    write_uvarint,
)

__all__ = ["DaySummary", "encode_summary", "decode_summary"]


class DaySummary:
    """One day's pre-aggregated analysis counts.

    ``ns``/``hosting``/``tld``/``sanctioned`` are ``(full, part, non)``
    composition triples; ``tld_counts`` and ``asn_counts`` store only
    non-zero entries (absent means zero, exactly as the reducers'
    ``> 0`` filters produce).
    """

    __slots__ = (
        "date",
        "epoch_start_day",
        "measured_count",
        "ns",
        "hosting",
        "tld",
        "tld_counts",
        "asn_counts",
        "sanctioned",
        "listed_count",
    )

    def __init__(
        self,
        date: _dt.date,
        epoch_start_day: int,
        measured_count: int,
        ns: Tuple[int, int, int],
        hosting: Tuple[int, int, int],
        tld: Tuple[int, int, int],
        tld_counts: Dict[str, int],
        asn_counts: Dict[int, int],
        sanctioned: Tuple[int, int, int],
        listed_count: int,
    ) -> None:
        self.date = date
        self.epoch_start_day = int(epoch_start_day)
        self.measured_count = int(measured_count)
        self.ns = tuple(int(v) for v in ns)
        self.hosting = tuple(int(v) for v in hosting)
        self.tld = tuple(int(v) for v in tld)
        self.tld_counts = {str(k): int(v) for k, v in tld_counts.items()}
        self.asn_counts = {int(k): int(v) for k, v in asn_counts.items()}
        self.sanctioned = tuple(int(v) for v in sanctioned)
        self.listed_count = int(listed_count)
        for name, triple in (
            ("ns", self.ns), ("hosting", self.hosting),
            ("tld", self.tld), ("sanctioned", self.sanctioned),
        ):
            if len(triple) != 3:
                raise ArchiveError(
                    f"summary triple {name!r} has {len(triple)} fields, not 3"
                )

    def key(self) -> Tuple:
        """Comparable content tuple (used by round-trip tests)."""
        return (
            self.date,
            self.epoch_start_day,
            self.measured_count,
            self.ns,
            self.hosting,
            self.tld,
            tuple(sorted(self.tld_counts.items())),
            tuple(sorted(self.asn_counts.items())),
            self.sanctioned,
            self.listed_count,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DaySummary):
            return NotImplemented
        return self.key() == other.key()

    def __repr__(self) -> str:
        return f"DaySummary({self.date}, {self.measured_count} measured)"


def encode_summary(summary: DaySummary) -> bytes:
    """Serialise one summary to its canonical (uncompressed) bytes."""
    buffer = bytearray()
    write_svarint(buffer, summary.epoch_start_day)
    write_uvarint(buffer, summary.measured_count)
    for triple in (summary.ns, summary.hosting, summary.tld):
        for value in triple:
            write_uvarint(buffer, value)
    write_uvarint(buffer, len(summary.tld_counts))
    for tld in sorted(summary.tld_counts):
        write_string(buffer, tld)
        write_uvarint(buffer, summary.tld_counts[tld])
    write_uvarint(buffer, len(summary.asn_counts))
    previous = 0
    for asn in sorted(summary.asn_counts):
        # ASNs are sorted, so deltas stay small; counts are raw uvarints.
        write_svarint(buffer, asn - previous)
        write_uvarint(buffer, summary.asn_counts[asn])
        previous = asn
    for value in summary.sanctioned:
        write_uvarint(buffer, value)
    write_uvarint(buffer, summary.listed_count)
    return bytes(buffer)


def decode_summary(date: _dt.date, payload: bytes) -> DaySummary:
    """Decode one summary block (the inverse of :func:`encode_summary`)."""
    view = memoryview(payload)
    offset = 0
    epoch_start_day, offset = read_svarint(view, offset)
    measured_count, offset = read_uvarint(view, offset)
    triples = []
    for _ in range(3):
        full, offset = read_uvarint(view, offset)
        part, offset = read_uvarint(view, offset)
        non, offset = read_uvarint(view, offset)
        triples.append((full, part, non))
    tld_count, offset = read_uvarint(view, offset)
    tld_counts: Dict[str, int] = {}
    for _ in range(tld_count):
        tld, offset = read_string(view, offset)
        count, offset = read_uvarint(view, offset)
        tld_counts[tld] = count
    asn_count, offset = read_uvarint(view, offset)
    asn_counts: Dict[int, int] = {}
    previous = 0
    for _ in range(asn_count):
        delta, offset = read_svarint(view, offset)
        previous += delta
        count, offset = read_uvarint(view, offset)
        asn_counts[previous] = count
    full, offset = read_uvarint(view, offset)
    part, offset = read_uvarint(view, offset)
    non, offset = read_uvarint(view, offset)
    listed_count, offset = read_uvarint(view, offset)
    if offset != len(view):
        raise ArchiveError(
            f"{len(view) - offset} trailing bytes in shard summary block"
        )
    return DaySummary(
        date,
        epoch_start_day,
        measured_count,
        triples[0],
        triples[1],
        triples[2],
        tld_counts,
        asn_counts,
        (full, part, non),
        listed_count,
    )
