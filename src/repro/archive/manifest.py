"""The archive manifest: what an archive contains and what built it.

``manifest.json`` is the archive's single source of truth:

* a schema version, so readers refuse formats they do not understand;
* the **scenario fingerprint** — the same tuple the parallel sweep
  engine uses to key per-worker collector caches
  (:func:`repro.measurement.sweep._scenario_key`) plus the collector's
  outage parameters — so an archive built from one scenario is refused
  by a context configured for another;
* the covered date set, one entry per day shard, each carrying the
  shard's file name, byte size, record count, and payload CRC32.

The manifest is rewritten atomically (temp file + ``os.replace``) with
sorted keys and no timestamps, so resumed builds converge on bytes
identical to uninterrupted ones.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
from typing import Dict, List, Optional, Sequence

from ..errors import ArchiveError, ArchiveMismatchError
from ..ioutil import atomic_write_bytes
from ..measurement.sweep import _scenario_key

__all__ = ["SCHEMA_VERSION", "MANIFEST_NAME", "scenario_fingerprint", "DayEntry", "Manifest"]

SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Field names matching the tuple order of ``sweep._scenario_key``.  The
#: two optional trailing fields identify a counterfactual scenario; a
#: baseline key has exactly the first five, so baseline manifests stay
#: byte-identical to archives built before the scenario engine existed.
_FINGERPRINT_FIELDS = (
    "scale",
    "seed",
    "geo_lag_days",
    "netnod_mode",
    "sanctioned_domain_count",
    "scenario",
    "spec_digest",
)


def scenario_fingerprint(config) -> Dict[str, object]:
    """The scenario identity an archive is bound to, as a JSON-safe dict."""
    key = _scenario_key(config)
    if len(key) > len(_FINGERPRINT_FIELDS):
        raise ArchiveError(
            f"scenario key has {len(key)} fields; "
            f"manifest knows {len(_FINGERPRINT_FIELDS)}"
        )
    return dict(zip(_FINGERPRINT_FIELDS, key))


class DayEntry:
    """Manifest entry for one day shard."""

    __slots__ = ("date", "file", "bytes", "records", "crc32")

    def __init__(
        self, date: _dt.date, file: str, bytes: int, records: int, crc32: int
    ) -> None:
        self.date = date
        self.file = file
        self.bytes = int(bytes)
        self.records = int(records)
        self.crc32 = int(crc32)

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "bytes": self.bytes,
            "records": self.records,
            "crc32": self.crc32,
        }

    def __repr__(self) -> str:
        return f"DayEntry({self.date}, {self.records} records, {self.bytes}B)"


class Manifest:
    """Schema version, scenario fingerprint, and the covered date set."""

    def __init__(
        self,
        scenario: Dict[str, object],
        collector: Dict[str, object],
        population_size: int,
        days: Optional[Dict[_dt.date, DayEntry]] = None,
    ) -> None:
        self.scenario = dict(scenario)
        #: Outage parameters the measurements were collected under.
        self.collector = dict(collector)
        self.population_size = int(population_size)
        self.days: Dict[_dt.date, DayEntry] = dict(days or {})

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------

    def covered_dates(self) -> List[_dt.date]:
        """All archived dates, chronological."""
        return sorted(self.days)

    def missing_dates(self, wanted: Sequence[_dt.date]) -> List[_dt.date]:
        """The subset of ``wanted`` not yet archived, chronological."""
        return sorted(set(wanted) - set(self.days))

    def add_day(self, entry: DayEntry) -> None:
        """Record (or overwrite) one day's shard entry."""
        self.days[entry.date] = entry

    def total_bytes(self) -> int:
        """Shard bytes covered by the manifest."""
        return sum(entry.bytes for entry in self.days.values())

    def total_records(self) -> int:
        """Domain-day records covered by the manifest."""
        return sum(entry.records for entry in self.days.values())

    # ------------------------------------------------------------------
    # Compatibility checks
    # ------------------------------------------------------------------

    def check_scenario(self, config) -> None:
        """Refuse a scenario that does not match the archive's fingerprint."""
        wanted = scenario_fingerprint(config)
        if self.scenario != wanted:
            differing = sorted(
                field
                for field in set(self.scenario) | set(wanted)
                if self.scenario.get(field) != wanted.get(field)
            )
            raise ArchiveMismatchError(
                "archive was built for a different scenario "
                f"(mismatched fields: {', '.join(differing)}; "
                f"archive={self.scenario}, requested={wanted})"
            )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": "repro-measurement-archive",
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "collector": self.collector,
            "population_size": self.population_size,
            "days": {
                date.isoformat(): entry.as_dict()
                for date, entry in sorted(self.days.items())
            },
        }

    def save(self, directory: str, faults=None) -> str:
        """Atomically (re)write ``manifest.json``; returns its path."""
        path = os.path.join(directory, MANIFEST_NAME)
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(
            path, text.encode("utf-8"), faults=faults, site="manifest.write"
        )
        return path

    @classmethod
    def load(cls, directory: str) -> "Manifest":
        """Load and validate ``manifest.json`` from an archive directory."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise ArchiveError(f"no archive manifest at {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"archive manifest {path} is not valid JSON: {exc}") from exc
        if raw.get("format") != "repro-measurement-archive":
            raise ArchiveError(f"{path} is not a measurement-archive manifest")
        version = raw.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArchiveError(
                f"archive schema version {version} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        try:
            days = {
                _dt.date.fromisoformat(text): DayEntry(
                    _dt.date.fromisoformat(text),
                    entry["file"],
                    entry["bytes"],
                    entry["records"],
                    entry["crc32"],
                )
                for text, entry in raw["days"].items()
            }
            return cls(
                raw["scenario"], raw["collector"], raw["population_size"], days
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(f"archive manifest {path} is malformed: {exc}") from exc
