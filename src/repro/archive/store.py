"""Reading side of the measurement archive.

:class:`MeasurementArchive` opens an archive directory, validates its
manifest, and serves CRC-checked day shards through a small LRU cache
(the full-period and conflict-window sweeps overlap, so hot days are
re-read from memory).  :class:`ArchiveCollector` then exposes the exact
collector interface the experiment layer already consumes —
``collect(date)`` and ``sweep(start, end, step)`` yielding snapshot
objects — so every :mod:`repro.core` reducer runs unchanged off disk.

Bit-identical results are structural, not incidental: an
:class:`ArchivedSnapshot` scatters the shard's per-measured plan ids
back over the population and borrows the epoch label tables from a
world rebuilt from the same scenario config, which is precisely the
state the live :class:`~repro.measurement.fast.FastCollector` computes.

The archive is **self-healing** when opened with its scenario config: a
shard that fails its CRC (or any other integrity check) is quarantined
— renamed aside, never deleted — and rebuilt in place from the config,
which by shard-byte determinism reproduces the original bytes exactly.
:meth:`MeasurementArchive.repair` runs the same quarantine-and-rebuild
over every problem :meth:`verify_detailed` finds, and transient read
errors are retried with bounded backoff before any of that triggers.
"""

from __future__ import annotations

import datetime as _dt
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ArchiveError,
    ArchiveMismatchError,
    ArchiveStaleError,
    RecoveryError,
)
from ..api.deadline import check_deadline
from ..faults import TransientIOError
from ..ioutil import backoff_seconds
from ..measurement.fast import DailySnapshot
from ..measurement.metrics import SweepMetrics
from ..measurement.records import DomainMeasurement
from ..timeline import DateLike, as_date
from ..sim.world import World
from .manifest import Manifest
from .shard import DayShardRecord, read_shard, read_summary
from .summary import DaySummary

__all__ = [
    "Problem",
    "RepairReport",
    "MeasurementArchive",
    "ArchivedSnapshot",
    "ArchiveCollector",
]

#: Shards kept decoded in memory (the two standard sweeps overlap).
_DEFAULT_CACHE_SHARDS = 16

#: Suffix quarantined shards are renamed to (not matched by the
#: ``*.shard`` orphan scan, so they never look adoptable).
QUARANTINE_SUFFIX = ".quarantined"


class Problem:
    """One classified archive integrity problem.

    ``kind`` is a stable machine-readable tag: ``missing-shard``,
    ``truncated``, ``stale-manifest-crc``, ``corrupt``,
    ``date-mismatch``, ``record-count``, or ``orphan``.
    """

    __slots__ = ("kind", "date", "file", "message")

    def __init__(
        self,
        kind: str,
        date: Optional[_dt.date],
        file: Optional[str],
        message: str,
    ) -> None:
        self.kind = kind
        self.date = date
        self.file = file
        self.message = message

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"

    def __repr__(self) -> str:
        return f"Problem({self.kind!r}, {self.date}, {self.file!r})"


class RepairReport:
    """Outcome of one :meth:`MeasurementArchive.repair` call."""

    __slots__ = ("quarantined", "rebuilt", "remaining")

    def __init__(
        self,
        quarantined: List[str],
        rebuilt: List[_dt.date],
        remaining: List[Problem],
    ) -> None:
        #: Files renamed aside (``*.quarantined``), never deleted.
        self.quarantined = quarantined
        #: Dates re-swept and re-archived, chronological.
        self.rebuilt = rebuilt
        #: Problems still present after the repair (empty on success).
        self.remaining = remaining

    @property
    def ok(self) -> bool:
        """True when the archive verified clean after the repair."""
        return not self.remaining

    def __repr__(self) -> str:
        return (
            f"RepairReport({len(self.quarantined)} quarantined, "
            f"{len(self.rebuilt)} rebuilt, {len(self.remaining)} remaining)"
        )


class MeasurementArchive:
    """An opened on-disk archive: manifest plus cached shard access.

    When ``config`` (the scenario the archive was built from) is
    supplied, damaged shards self-heal on read: quarantine, rebuild
    from the config, re-read.  Without a config the archive is
    read-only and damage raises the classified :class:`ArchiveError`.
    """

    def __init__(
        self,
        directory: str,
        metrics: Optional[SweepMetrics] = None,
        cache_shards: int = _DEFAULT_CACHE_SHARDS,
        config=None,
        faults=None,
        read_retries: int = 3,
        retry_backoff: float = 0.01,
        readers: int = 1,
    ) -> None:
        self.directory = str(directory)
        self.manifest = Manifest.load(self.directory)
        self.metrics = metrics
        self.config = config
        self.faults = faults
        self.read_retries = int(read_retries)
        self.retry_backoff = float(retry_backoff)
        #: Default reader-pool width for range reads: shard decode is
        #: mostly zlib (which releases the GIL), so uncached shards of
        #: one range are fetched and inflated concurrently when > 1.
        #: Single-day reads and ``readers=1`` keep the serial path.
        self.readers = max(1, int(readers))
        self._cache_shards = max(1, int(cache_shards))
        self._cache: "OrderedDict[_dt.date, DayShardRecord]" = OrderedDict()
        #: Decoded per-day summaries (a few hundred bytes each, so no
        #: eviction); ``None`` marks a v2 shard with no stored summary.
        self._summaries: Dict[_dt.date, Optional[DaySummary]] = {}
        #: Per-date uncached-read ordinals keying service.archive_read
        #: fault decisions (a retry re-rolls under a fresh key).
        self._service_reads: Dict[_dt.date, int] = {}
        self._rebuilder = None
        # The query service shares one archive across executor threads;
        # the decoded-shard LRU (and self-healing) must be race-free.
        self._lock = threading.RLock()

    def __contains__(self, date: DateLike) -> bool:
        return as_date(date) in self.manifest.days

    def reload(self) -> None:
        """Re-read the manifest from disk, picking up appended days.

        The live follow engine extends the archive while a serving
        process holds it open; shards are immutable once published, so
        the decoded caches stay valid — only the manifest needs
        refreshing.
        """
        with self._lock:
            self.manifest = Manifest.load(self.directory)

    def path_for(self, date: DateLike) -> str:
        """The shard path for ``date`` (which must be covered)."""
        date_obj = as_date(date)
        entry = self.manifest.days.get(date_obj)
        if entry is None:
            raise ArchiveError(
                f"archive {self.directory} does not cover {date_obj} "
                "(extend it with 'repro archive build')"
            )
        return os.path.join(self.directory, entry.file)

    def load_day(self, date: DateLike) -> DayShardRecord:
        """The day's shard record, CRC-verified, via the LRU cache.

        Transient read errors retry with bounded backoff; integrity
        failures self-heal (quarantine + rebuild) when the archive was
        opened with its scenario config.
        """
        date_obj = as_date(date)
        with self._lock:
            cached = self._cache.get(date_obj)
            if cached is not None:
                self._cache.move_to_end(date_obj)
                if self.metrics is not None:
                    self.metrics.record_cache("archive_shards", 1, 0)
                return cached
            # A read that must leave memory is a phase boundary: a
            # request whose budget already ran out stops here instead
            # of decoding a shard nobody is waiting for.
            check_deadline("archive_read")
            if self.faults is not None:
                # The service-level read fault: unlike shard.read below
                # it is NOT retried in-path — it surfaces as a failed
                # query so the breaker and client retries recover it.
                ordinal = self._service_reads.get(date_obj, 0)
                self._service_reads[date_obj] = ordinal + 1
                self.faults.check(
                    "service.archive_read", f"{date_obj}#{ordinal}"
                )
            entry = self.manifest.days.get(date_obj)
            if entry is None:
                raise ArchiveError(
                    f"archive {self.directory} does not cover {date_obj} "
                    "(extend it with 'repro archive build')"
                )
            try:
                record = self._read_day(date_obj, entry)
            except ArchiveMismatchError:
                raise
            except ArchiveError as exc:
                if self.config is None:
                    raise
                record = self._heal_day(date_obj, exc)
            self._cache[date_obj] = record
            while len(self._cache) > self._cache_shards:
                self._cache.popitem(last=False)
            return record

    def load_range(
        self,
        start: DateLike,
        end: DateLike,
        step: int = 1,
        readers: Optional[int] = None,
    ) -> List[DayShardRecord]:
        """Every covered day record in ``[start, end]`` at ``step`` days.

        A range read for the serving layer: each day goes through the
        shared LRU (so concurrent requests over overlapping windows hit
        memory), and days the archive does not cover raise, exactly as
        :meth:`load_day` would.

        With ``readers > 1`` (argument, else the archive's default),
        uncached days are read and decoded through a bounded thread
        pool: the file IO and zlib inflate of different shards overlap
        (zlib releases the GIL), while cache admission, fault-decision
        ordering, and self-healing stay serialised under the archive
        lock.  Each record is produced by the same CRC-checked
        :meth:`_read_day` the serial path runs, so results are
        bit-identical to a serial read — proven per figure in
        ``tests/archive/test_parallel_read``.
        """
        dates = self._range_dates(start, end, step)
        effective = self.readers if readers is None else max(1, int(readers))
        if effective <= 1 or len(dates) <= 1:
            return [self.load_day(day) for day in dates]

        records: Dict[_dt.date, DayShardRecord] = {}
        missing: List[Tuple[_dt.date, object]] = []
        with self._lock:
            for date_obj in dates:
                if date_obj in records:
                    continue
                cached = self._cache.get(date_obj)
                if cached is not None:
                    self._cache.move_to_end(date_obj)
                    if self.metrics is not None:
                        self.metrics.record_cache("archive_shards", 1, 0)
                    records[date_obj] = cached
                    continue
                check_deadline("archive_read")
                if self.faults is not None:
                    ordinal = self._service_reads.get(date_obj, 0)
                    self._service_reads[date_obj] = ordinal + 1
                    self.faults.check(
                        "service.archive_read", f"{date_obj}#{ordinal}"
                    )
                entry = self.manifest.days.get(date_obj)
                if entry is None:
                    raise ArchiveError(
                        f"archive {self.directory} does not cover {date_obj} "
                        "(extend it with 'repro archive build')"
                    )
                missing.append((date_obj, entry))

        if missing:
            pool_width = min(effective, len(missing))
            with ThreadPoolExecutor(
                max_workers=pool_width, thread_name_prefix="shard-read"
            ) as pool:
                futures = [
                    (date_obj, pool.submit(self._read_day, date_obj, entry))
                    for date_obj, entry in missing
                ]
                outcomes: List[Tuple[_dt.date, object, Optional[BaseException]]] = []
                for date_obj, future in futures:
                    try:
                        outcomes.append((date_obj, future.result(), None))
                    except BaseException as exc:  # classified below
                        outcomes.append((date_obj, None, exc))
            with self._lock:
                for date_obj, record, error in outcomes:
                    if error is not None:
                        # Mirror load_day's triage exactly: mismatches
                        # and non-archive errors (RecoveryError,
                        # deadline) propagate; integrity damage heals
                        # when a config is present, else raises.  The
                        # pool has already drained, so a failure never
                        # leaves reader threads hanging.
                        if (
                            not isinstance(error, ArchiveError)
                            or isinstance(error, ArchiveMismatchError)
                            or self.config is None
                        ):
                            raise error
                        record = self._heal_day(date_obj, error)
                    records[date_obj] = record
                    self._cache[date_obj] = record
                    self._cache.move_to_end(date_obj)
                while len(self._cache) > self._cache_shards:
                    self._cache.popitem(last=False)
        return [records[day] for day in dates]

    def load_summaries(
        self,
        start: DateLike,
        end: DateLike,
        step: int = 1,
        readers: Optional[int] = None,
    ) -> List[Optional[DaySummary]]:
        """Per-day summaries over a range, parallel like :meth:`load_range`.

        The coarse-query analogue of a parallel range read: uncached
        summary blocks (a partial read of each shard's first few
        hundred bytes) are fetched through the bounded reader pool.
        Entries are ``None`` for v2 shards with no stored summary,
        exactly as :meth:`load_summary` reports them.
        """
        dates = self._range_dates(start, end, step)
        effective = self.readers if readers is None else max(1, int(readers))
        if effective <= 1 or len(dates) <= 1:
            return [self.load_summary(day) for day in dates]

        summaries: Dict[_dt.date, Optional[DaySummary]] = {}
        missing: List[Tuple[_dt.date, object]] = []
        with self._lock:
            for date_obj in dates:
                if date_obj in summaries:
                    continue
                cached_record = self._cache.get(date_obj)
                if cached_record is not None and cached_record.summary is not None:
                    if self.metrics is not None:
                        self.metrics.record_cache("archive_summaries", 1, 0)
                    summaries[date_obj] = cached_record.summary
                    continue
                if date_obj in self._summaries:
                    if self.metrics is not None:
                        self.metrics.record_cache("archive_summaries", 1, 0)
                    summaries[date_obj] = self._summaries[date_obj]
                    continue
                check_deadline("archive_read")
                if self.faults is not None:
                    ordinal = self._service_reads.get(date_obj, 0)
                    self._service_reads[date_obj] = ordinal + 1
                    self.faults.check(
                        "service.archive_read", f"{date_obj}#{ordinal}"
                    )
                entry = self.manifest.days.get(date_obj)
                if entry is None:
                    raise ArchiveError(
                        f"archive {self.directory} does not cover {date_obj} "
                        "(extend it with 'repro archive build')"
                    )
                missing.append((date_obj, entry))

        if missing:
            pool_width = min(effective, len(missing))
            with ThreadPoolExecutor(
                max_workers=pool_width, thread_name_prefix="summary-read"
            ) as pool:
                futures = [
                    (date_obj, pool.submit(self._read_summary, date_obj, entry))
                    for date_obj, entry in missing
                ]
                outcomes: List[Tuple[_dt.date, object, Optional[BaseException]]] = []
                for date_obj, future in futures:
                    try:
                        outcomes.append((date_obj, future.result(), None))
                    except BaseException as exc:
                        outcomes.append((date_obj, None, exc))
            with self._lock:
                for date_obj, summary, error in outcomes:
                    if error is not None:
                        if (
                            not isinstance(error, ArchiveError)
                            or isinstance(error, ArchiveMismatchError)
                            or self.config is None
                        ):
                            raise error
                        record = self._heal_day(date_obj, error)
                        self._cache[date_obj] = record
                        while len(self._cache) > self._cache_shards:
                            self._cache.popitem(last=False)
                        summary = record.summary
                    summaries[date_obj] = summary
                    self._summaries[date_obj] = summary
        return [summaries[day] for day in dates]

    @staticmethod
    def _range_dates(
        start: DateLike, end: DateLike, step: int
    ) -> List[_dt.date]:
        if step < 1:
            raise ArchiveError(f"range step must be >= 1 day: {step}")
        start_date = as_date(start)
        end_date = as_date(end)
        if start_date > end_date:
            raise ArchiveError(
                f"inverted range: {start_date} > {end_date}"
            )
        dates: List[_dt.date] = []
        day = start_date
        while day <= end_date:
            dates.append(day)
            day += _dt.timedelta(days=step)
        return dates

    def load_summary(self, date: DateLike) -> Optional[DaySummary]:
        """The day's pre-aggregated summary, or ``None`` for v2 shards.

        The coarse-query fast path: a v3 shard answers from the first
        few hundred bytes of the file (header + compressed summary
        block) without decompressing — or reading — the per-domain
        columns.  Goes through the same deadline, fault-injection, and
        self-healing discipline as :meth:`load_day`; a decoded shard
        already sitting in the LRU donates its summary for free.
        """
        date_obj = as_date(date)
        with self._lock:
            cached_record = self._cache.get(date_obj)
            if cached_record is not None and cached_record.summary is not None:
                if self.metrics is not None:
                    self.metrics.record_cache("archive_summaries", 1, 0)
                return cached_record.summary
            if date_obj in self._summaries:
                if self.metrics is not None:
                    self.metrics.record_cache("archive_summaries", 1, 0)
                return self._summaries[date_obj]
            check_deadline("archive_read")
            if self.faults is not None:
                ordinal = self._service_reads.get(date_obj, 0)
                self._service_reads[date_obj] = ordinal + 1
                self.faults.check(
                    "service.archive_read", f"{date_obj}#{ordinal}"
                )
            entry = self.manifest.days.get(date_obj)
            if entry is None:
                raise ArchiveError(
                    f"archive {self.directory} does not cover {date_obj} "
                    "(extend it with 'repro archive build')"
                )
            try:
                summary = self._read_summary(date_obj, entry)
            except ArchiveMismatchError:
                raise
            except ArchiveError as exc:
                if self.config is None:
                    raise
                # Healing re-reads the whole shard; rebuilt shards are
                # v3, so the healed record always carries a summary.
                record = self._heal_day(date_obj, exc)
                self._cache[date_obj] = record
                while len(self._cache) > self._cache_shards:
                    self._cache.popitem(last=False)
                summary = record.summary
            self._summaries[date_obj] = summary
            return summary

    def _read_summary(
        self, date_obj: _dt.date, entry
    ) -> Optional[DaySummary]:
        """One partial summary read, with transient-error retry."""
        path = os.path.join(self.directory, entry.file)
        for attempt in range(self.read_retries + 1):
            started = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.check("shard.read", f"{entry.file}#{attempt}")
                summary, bytes_read = read_summary(path, expected_crc=entry.crc32)
                break
            except TransientIOError as exc:
                if attempt >= self.read_retries:
                    raise RecoveryError(
                        f"could not read shard {entry.file} after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                time.sleep(backoff_seconds(attempt, self.retry_backoff))
        elapsed = time.perf_counter() - started
        if summary is not None and summary.date != date_obj:
            raise ArchiveStaleError(
                f"shard {entry.file} contains {summary.date}, "
                f"manifest says {date_obj}"
            )
        if self.metrics is not None:
            self.metrics.record_cache("archive_summaries", 0, 1)
            with self.metrics.phase("archive_read") as stat:
                pass
            stat.wall_seconds += elapsed
            stat.snapshots += 1
            stat.notes["bytes"] = int(stat.notes.get("bytes", 0)) + bytes_read
        return summary

    def _read_day(self, date_obj: _dt.date, entry) -> DayShardRecord:
        """One CRC-checked shard read, with transient-error retry."""
        path = os.path.join(self.directory, entry.file)
        for attempt in range(self.read_retries + 1):
            started = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.check("shard.read", f"{entry.file}#{attempt}")
                record = read_shard(path, expected_crc=entry.crc32)
                break
            except TransientIOError as exc:
                if attempt >= self.read_retries:
                    raise RecoveryError(
                        f"could not read shard {entry.file} after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                time.sleep(backoff_seconds(attempt, self.retry_backoff))
        elapsed = time.perf_counter() - started
        if record.date != date_obj:
            raise ArchiveStaleError(
                f"shard {entry.file} contains {record.date}, manifest says {date_obj}"
            )
        if len(record.measured) != entry.records:
            raise ArchiveStaleError(
                f"shard {entry.file} has {len(record.measured)} records, "
                f"manifest says {entry.records}"
            )
        if self.metrics is not None:
            self.metrics.record_cache("archive_shards", 0, 1)
            with self.metrics.phase("archive_read") as stat:
                pass
            stat.wall_seconds += elapsed
            stat.snapshots += 1
            stat.notes["bytes"] = int(stat.notes.get("bytes", 0)) + entry.bytes
        return record

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------

    def _builder(self, config, workers: int = 1):
        """An :class:`ArchiveBuilder` matching the manifest's collector.

        Cached across heals so the rebuild world is constructed once.
        The collector parameters (outage dates, coverage, seed) come
        from the manifest itself, so a rebuilt shard reproduces the
        original measurements exactly.
        """
        if self._rebuilder is None or self._rebuilder.config is not config:
            from .builder import ArchiveBuilder

            collector = self.manifest.collector
            self._rebuilder = ArchiveBuilder(
                self.directory,
                config,
                workers=workers,
                metrics=self.metrics,
                outage_dates=[as_date(t) for t in collector["outage_dates"]],
                outage_coverage=float(collector["outage_coverage"]),
                collector_seed=int(collector["seed"]),
            )
        return self._rebuilder

    def _quarantine(self, file: str) -> bool:
        """Rename a damaged shard aside; returns False if it was absent."""
        path = os.path.join(self.directory, file)
        if not os.path.exists(path):
            return False
        os.replace(path, path + QUARANTINE_SUFFIX)
        return True

    def _heal_day(self, date_obj: _dt.date, cause: ArchiveError) -> DayShardRecord:
        """Quarantine and rebuild one damaged day, then re-read it."""
        entry = self.manifest.days[date_obj]
        self._quarantine(entry.file)
        del self.manifest.days[date_obj]
        self.manifest.save(self.directory)
        if self.metrics is not None:
            self.metrics.record_recovery("shards_quarantined", 1)
        self._builder(self.config).build(date_obj, date_obj, 1)
        self.manifest = Manifest.load(self.directory)
        entry = self.manifest.days.get(date_obj)
        if entry is None:
            raise RecoveryError(
                f"rebuild of {date_obj} produced no shard (original error: {cause})"
            ) from cause
        record = self._read_day(date_obj, entry)
        if self.metrics is not None:
            self.metrics.record_recovery("shards_rebuilt", 1)
        return record

    def repair(self, config=None, workers: int = 1) -> RepairReport:
        """Quarantine and rebuild everything :meth:`verify_detailed` flags.

        ``config`` must describe the scenario the archive was built
        from (checked against the manifest fingerprint —
        :class:`ArchiveMismatchError` otherwise).  Orphan shards from
        interrupted builds are quarantined too; rebuilding is driven
        from the manifest, which stays authoritative.
        """
        config = config if config is not None else self.config
        if config is None:
            raise ArchiveError(
                "repair needs the archive's scenario config to rebuild shards"
            )
        self.manifest.check_scenario(config)
        problems = self.verify_detailed()
        if not problems:
            return RepairReport([], [], [])
        quarantined: List[str] = []
        bad_dates: List[_dt.date] = []
        for problem in problems:
            if problem.file is not None and self._quarantine(problem.file):
                quarantined.append(problem.file)
            if problem.date is not None:
                bad_dates.append(problem.date)
                self.manifest.days.pop(problem.date, None)
        bad_dates = sorted(set(bad_dates))
        self.manifest.save(self.directory)
        if self.metrics is not None and quarantined:
            self.metrics.record_recovery("shards_quarantined", len(quarantined))
        if bad_dates:
            from .builder import _segments

            builder = self._builder(config, workers=workers)
            for seg_start, seg_end, seg_step in _segments(bad_dates):
                builder.build(seg_start, seg_end, seg_step)
            if self.metrics is not None:
                self.metrics.record_recovery("shards_rebuilt", len(bad_dates))
        self.manifest = Manifest.load(self.directory)
        with self._lock:
            self._cache.clear()
        return RepairReport(quarantined, bad_dates, self.verify_detailed())

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_detailed(self) -> List[Problem]:
        """Re-read every shard against the manifest; classified problems."""
        problems: List[Problem] = []
        listed = set()
        for date in self.manifest.covered_dates():
            entry = self.manifest.days[date]
            listed.add(entry.file)
            path = os.path.join(self.directory, entry.file)
            try:
                size = os.path.getsize(path)
            except OSError:
                problems.append(
                    Problem(
                        "missing-shard",
                        date,
                        entry.file,
                        f"{date}: shard file {entry.file} is missing",
                    )
                )
                continue
            if size != entry.bytes:
                problems.append(
                    Problem(
                        "truncated",
                        date,
                        entry.file,
                        f"{date}: {entry.file} is {size} bytes, "
                        f"manifest says {entry.bytes}",
                    )
                )
                continue
            try:
                record = read_shard(path, expected_crc=entry.crc32)
            except ArchiveStaleError as exc:
                problems.append(
                    Problem("stale-manifest-crc", date, entry.file, f"{date}: {exc}")
                )
                continue
            except ArchiveError as exc:
                problems.append(
                    Problem("corrupt", date, entry.file, f"{date}: {exc}")
                )
                continue
            if record.date != date:
                problems.append(
                    Problem(
                        "date-mismatch",
                        date,
                        entry.file,
                        f"{date}: {entry.file} contains {record.date} instead",
                    )
                )
            elif len(record.measured) != entry.records:
                problems.append(
                    Problem(
                        "record-count",
                        date,
                        entry.file,
                        f"{date}: {entry.file} has {len(record.measured)} records, "
                        f"manifest says {entry.records}",
                    )
                )
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".shard") and name not in listed:
                problems.append(
                    Problem(
                        "orphan",
                        None,
                        name,
                        f"{name} is not listed in the manifest "
                        "(interrupted build; rerun 'repro archive build' to adopt it)",
                    )
                )
        return problems

    def verify(self) -> List[str]:
        """Re-read every shard against the manifest; returns problems found."""
        return [str(problem) for problem in self.verify_detailed()]


class ArchivedSnapshot(DailySnapshot):
    """A :class:`DailySnapshot` reconstructed from a day shard.

    Plan-id columns are scattered back over the full population (only
    positions named by ``measured`` are ever read), and the epoch label
    tables come from the companion world.  Per-domain record
    materialisation is overridden to read the shard's own measurement
    columns, so sampling does not touch the world's slow path.
    """

    __slots__ = ("_record",)

    def __init__(self, world: World, record: DayShardRecord) -> None:
        if record.population_size != len(world.population):
            raise ArchiveError(
                f"shard for {record.date} covers a population of "
                f"{record.population_size}, world has {len(world.population)}"
            )
        epoch = world.epoch_at(record.date)
        if epoch.start_day != record.epoch_start_day:
            raise ArchiveError(
                f"shard for {record.date} was built under epoch "
                f"{record.epoch_start_day}, world derives {epoch.start_day} "
                "(stale archive?)"
            )
        # The shard columns are already at their final dtypes (measured
        # int64, plan ids int32), so the only per-snapshot allocations
        # are the two population-sized scatter buffers.  Unmeasured
        # positions hold the sentinel -1, NOT plan id 0: a consumer that
        # indexes outside ``measured`` gets a loudly-invalid id (numpy
        # bincount raises on negatives) instead of silently counting a
        # genuine plan 0.
        measured = record.measured
        dns_ids = np.full(record.population_size, -1, dtype=np.int32)
        hosting_ids = np.full(record.population_size, -1, dtype=np.int32)
        dns_ids[measured] = record.dns_ids
        hosting_ids[measured] = record.hosting_ids
        self.date = record.date
        self.measured = measured
        self.dns_ids = dns_ids
        self.hosting_ids = hosting_ids
        self.epoch = epoch
        self._world = world
        self._record = record

    @property
    def shard(self) -> DayShardRecord:
        """The underlying day-shard record."""
        return self._record

    def measurement_for(self, domain_index: int) -> DomainMeasurement:
        """Materialise one record from the shard's stored columns."""
        return self._record.measurement_for(int(domain_index))


class ArchiveCollector:
    """Serves archived measurement days through the collector interface.

    Mirrors :class:`~repro.measurement.fast.FastCollector`: ``collect``
    for random access, ``sweep`` for longitudinal iteration, and the
    outage parameters the measurements were collected under (outages are
    baked into each shard's measured set, so replay is exact).
    """

    def __init__(
        self,
        archive: MeasurementArchive,
        world: "World | Callable[[], World]",
    ) -> None:
        self._archive = archive
        self._world_lock = threading.Lock()
        self._kernel = None
        if isinstance(world, World):
            self._check_world(world)
            self._world = world
            self._world_factory = None
        else:
            # A zero-arg factory: the world is built on first access.
            # Coarse queries served from shard summaries never trigger
            # it — world construction dominates live-sweep cost, so
            # deferring it is what lets the warm archive beat live.
            self._world = None
            self._world_factory = world

    def _check_world(self, world: World) -> None:
        if self._archive.manifest.population_size != len(world.population):
            raise ArchiveError(
                f"archive population ({self._archive.manifest.population_size}) "
                f"does not match the world ({len(world.population)})"
            )

    @property
    def archive(self) -> MeasurementArchive:
        """The backing archive."""
        return self._archive

    @property
    def kernel(self):
        """The columnar query kernel over this collector (cached).

        Coarse queries routed through it run on stored shard summaries
        and never materialise snapshots or the world.
        """
        if self._kernel is None:
            from .kernel import ArchiveQueryKernel

            self._kernel = ArchiveQueryKernel(self)
        return self._kernel

    @property
    def world(self) -> World:
        """The companion world (epoch labels, sanctions, catalog).

        Built lazily when the collector was given a factory; queries
        answered purely from shard summaries never pay for it.
        """
        if self._world is None:
            with self._world_lock:
                if self._world is None:
                    world = self._world_factory()
                    self._check_world(world)
                    self._world = world
        return self._world

    @property
    def outage_dates(self) -> Tuple[_dt.date, ...]:
        """Outage dates the archived measurements were collected under."""
        return tuple(
            as_date(text) for text in self._archive.manifest.collector["outage_dates"]
        )

    @property
    def outage_coverage(self) -> float:
        """Outage-day coverage the measurements were collected under."""
        return float(self._archive.manifest.collector["outage_coverage"])

    @property
    def seed(self) -> int:
        """The outage-sampling seed used at collection time."""
        return int(self._archive.manifest.collector["seed"])

    def collect(self, date: DateLike) -> ArchivedSnapshot:
        """Load one archived day (random access)."""
        return ArchivedSnapshot(self.world, self._archive.load_day(date))

    def sweep(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> Iterator[ArchivedSnapshot]:
        """Replay every ``step`` days in [start, end] from disk.

        When the archive was opened with ``readers > 1``, days are
        prefetched in bounded batches through the parallel range read
        (a batch of a few pool-widths of shards decodes concurrently),
        while the yielded snapshots stay in strict date order and
        bit-identical to serial collection.
        """
        if step < 1:
            raise ArchiveError(f"sweep step must be >= 1 day: {step}")
        if self._archive.readers <= 1:
            day = as_date(start)
            end_date = as_date(end)
            while day <= end_date:
                yield self.collect(day)
                day += _dt.timedelta(days=step)
            return
        dates = MeasurementArchive._range_dates(start, end, step)
        batch = self._archive.readers * 4
        for index in range(0, len(dates), batch):
            chunk = dates[index:index + batch]
            records = self._archive.load_range(chunk[0], chunk[-1], step)
            for record in records:
                yield ArchivedSnapshot(self.world, record)

    def records(
        self, date: DateLike, domain_indices: Optional[Sequence[int]] = None
    ) -> List[DomainMeasurement]:
        """Materialised records for one day (the resolving-path interface)."""
        snapshot = self.collect(date)
        return list(snapshot.measurements(domain_indices))
