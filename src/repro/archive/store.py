"""Reading side of the measurement archive.

:class:`MeasurementArchive` opens an archive directory, validates its
manifest, and serves CRC-checked day shards through a small LRU cache
(the full-period and conflict-window sweeps overlap, so hot days are
re-read from memory).  :class:`ArchiveCollector` then exposes the exact
collector interface the experiment layer already consumes —
``collect(date)`` and ``sweep(start, end, step)`` yielding snapshot
objects — so every :mod:`repro.core` reducer runs unchanged off disk.

Bit-identical results are structural, not incidental: an
:class:`ArchivedSnapshot` scatters the shard's per-measured plan ids
back over the population and borrows the epoch label tables from a
world rebuilt from the same scenario config, which is precisely the
state the live :class:`~repro.measurement.fast.FastCollector` computes.
"""

from __future__ import annotations

import datetime as _dt
import os
import time
from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ArchiveError
from ..measurement.fast import DailySnapshot
from ..measurement.metrics import SweepMetrics
from ..measurement.records import DomainMeasurement
from ..timeline import DateLike, as_date
from ..sim.world import World
from .manifest import Manifest
from .shard import DayShardRecord, read_shard

__all__ = ["MeasurementArchive", "ArchivedSnapshot", "ArchiveCollector"]

#: Shards kept decoded in memory (the two standard sweeps overlap).
_DEFAULT_CACHE_SHARDS = 16


class MeasurementArchive:
    """An opened on-disk archive: manifest plus cached shard access."""

    def __init__(
        self,
        directory: str,
        metrics: Optional[SweepMetrics] = None,
        cache_shards: int = _DEFAULT_CACHE_SHARDS,
    ) -> None:
        self.directory = str(directory)
        self.manifest = Manifest.load(self.directory)
        self.metrics = metrics
        self._cache_shards = max(1, int(cache_shards))
        self._cache: "OrderedDict[_dt.date, DayShardRecord]" = OrderedDict()

    def __contains__(self, date: DateLike) -> bool:
        return as_date(date) in self.manifest.days

    def path_for(self, date: DateLike) -> str:
        """The shard path for ``date`` (which must be covered)."""
        date_obj = as_date(date)
        entry = self.manifest.days.get(date_obj)
        if entry is None:
            raise ArchiveError(
                f"archive {self.directory} does not cover {date_obj} "
                "(extend it with 'repro archive build')"
            )
        return os.path.join(self.directory, entry.file)

    def load_day(self, date: DateLike) -> DayShardRecord:
        """The day's shard record, CRC-verified, via the LRU cache."""
        date_obj = as_date(date)
        cached = self._cache.get(date_obj)
        if cached is not None:
            self._cache.move_to_end(date_obj)
            if self.metrics is not None:
                self.metrics.record_cache("archive_shards", 1, 0)
            return cached
        entry = self.manifest.days.get(date_obj)
        if entry is None:
            raise ArchiveError(
                f"archive {self.directory} does not cover {date_obj} "
                "(extend it with 'repro archive build')"
            )
        started = time.perf_counter()
        record = read_shard(
            os.path.join(self.directory, entry.file), expected_crc=entry.crc32
        )
        elapsed = time.perf_counter() - started
        if record.date != date_obj:
            raise ArchiveError(
                f"shard {entry.file} contains {record.date}, manifest says {date_obj}"
            )
        if len(record.measured) != entry.records:
            raise ArchiveError(
                f"shard {entry.file} has {len(record.measured)} records, "
                f"manifest says {entry.records}"
            )
        if self.metrics is not None:
            self.metrics.record_cache("archive_shards", 0, 1)
            with self.metrics.phase("archive_read") as stat:
                pass
            stat.wall_seconds += elapsed
            stat.snapshots += 1
            stat.notes["bytes"] = int(stat.notes.get("bytes", 0)) + entry.bytes
        self._cache[date_obj] = record
        while len(self._cache) > self._cache_shards:
            self._cache.popitem(last=False)
        return record

    def verify(self) -> List[str]:
        """Re-read every shard against the manifest; returns problems found."""
        problems: List[str] = []
        listed = set()
        for date in self.manifest.covered_dates():
            entry = self.manifest.days[date]
            listed.add(entry.file)
            path = os.path.join(self.directory, entry.file)
            try:
                size = os.path.getsize(path)
            except OSError:
                problems.append(f"{date}: shard file {entry.file} is missing")
                continue
            if size != entry.bytes:
                problems.append(
                    f"{date}: {entry.file} is {size} bytes, manifest says {entry.bytes}"
                )
                continue
            try:
                record = read_shard(path, expected_crc=entry.crc32)
            except ArchiveError as exc:
                problems.append(f"{date}: {exc}")
                continue
            if record.date != date:
                problems.append(
                    f"{date}: {entry.file} contains {record.date} instead"
                )
            elif len(record.measured) != entry.records:
                problems.append(
                    f"{date}: {entry.file} has {len(record.measured)} records, "
                    f"manifest says {entry.records}"
                )
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".shard") and name not in listed:
                problems.append(
                    f"{name} is not listed in the manifest "
                    "(interrupted build; rerun 'repro archive build' to adopt it)"
                )
        return problems


class ArchivedSnapshot(DailySnapshot):
    """A :class:`DailySnapshot` reconstructed from a day shard.

    Plan-id columns are scattered back over the full population (only
    positions named by ``measured`` are ever read), and the epoch label
    tables come from the companion world.  Per-domain record
    materialisation is overridden to read the shard's own measurement
    columns, so sampling does not touch the world's slow path.
    """

    __slots__ = ("_record",)

    def __init__(self, world: World, record: DayShardRecord) -> None:
        if record.population_size != len(world.population):
            raise ArchiveError(
                f"shard for {record.date} covers a population of "
                f"{record.population_size}, world has {len(world.population)}"
            )
        epoch = world.epoch_at(record.date)
        if epoch.start_day != record.epoch_start_day:
            raise ArchiveError(
                f"shard for {record.date} was built under epoch "
                f"{record.epoch_start_day}, world derives {epoch.start_day} "
                "(stale archive?)"
            )
        measured = np.asarray(record.measured, dtype=np.int64)
        dns_ids = np.zeros(record.population_size, dtype=np.int32)
        hosting_ids = np.zeros(record.population_size, dtype=np.int32)
        dns_ids[measured] = np.asarray(record.dns_ids, dtype=np.int32)
        hosting_ids[measured] = np.asarray(record.hosting_ids, dtype=np.int32)
        self.date = record.date
        self.measured = measured
        self.dns_ids = dns_ids
        self.hosting_ids = hosting_ids
        self.epoch = epoch
        self._world = world
        self._record = record

    @property
    def shard(self) -> DayShardRecord:
        """The underlying day-shard record."""
        return self._record

    def measurement_for(self, domain_index: int) -> DomainMeasurement:
        """Materialise one record from the shard's stored columns."""
        return self._record.measurement_for(int(domain_index))


class ArchiveCollector:
    """Serves archived measurement days through the collector interface.

    Mirrors :class:`~repro.measurement.fast.FastCollector`: ``collect``
    for random access, ``sweep`` for longitudinal iteration, and the
    outage parameters the measurements were collected under (outages are
    baked into each shard's measured set, so replay is exact).
    """

    def __init__(self, archive: MeasurementArchive, world: World) -> None:
        self._archive = archive
        if archive.manifest.population_size != len(world.population):
            raise ArchiveError(
                f"archive population ({archive.manifest.population_size}) "
                f"does not match the world ({len(world.population)})"
            )
        self._world = world

    @property
    def archive(self) -> MeasurementArchive:
        """The backing archive."""
        return self._archive

    @property
    def world(self) -> World:
        """The companion world (epoch labels, sanctions, catalog)."""
        return self._world

    @property
    def outage_dates(self) -> Tuple[_dt.date, ...]:
        """Outage dates the archived measurements were collected under."""
        return tuple(
            as_date(text) for text in self._archive.manifest.collector["outage_dates"]
        )

    @property
    def outage_coverage(self) -> float:
        """Outage-day coverage the measurements were collected under."""
        return float(self._archive.manifest.collector["outage_coverage"])

    @property
    def seed(self) -> int:
        """The outage-sampling seed used at collection time."""
        return int(self._archive.manifest.collector["seed"])

    def collect(self, date: DateLike) -> ArchivedSnapshot:
        """Load one archived day (random access)."""
        return ArchivedSnapshot(self._world, self._archive.load_day(date))

    def sweep(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> Iterator[ArchivedSnapshot]:
        """Replay every ``step`` days in [start, end] from disk."""
        if step < 1:
            raise ArchiveError(f"sweep step must be >= 1 day: {step}")
        day = as_date(start)
        end_date = as_date(end)
        while day <= end_date:
            yield self.collect(day)
            day += _dt.timedelta(days=step)

    def records(
        self, date: DateLike, domain_indices: Optional[Sequence[int]] = None
    ) -> List[DomainMeasurement]:
        """Materialised records for one day (the resolving-path interface)."""
        snapshot = self.collect(date)
        return list(snapshot.measurements(domain_indices))
