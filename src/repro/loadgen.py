"""``repro loadgen`` — a seed-pure open-loop load generator.

Drives a running ``repro serve`` (single- or multi-process) with
conflict-monitoring-shaped traffic and measures what users would feel:
latency percentiles, error rate, stale-serve rate, and throughput.

Two properties matter more than raw horsepower:

* **open loop** — request *start* times come from a Poisson arrival
  process fixed up front, not from when the previous response landed.
  A closed loop slows down exactly when the service does, hiding
  queueing collapse; an open loop keeps offering load and lets p99 show
  the damage (coordinated-omission-free by construction).
* **seed-purity** — the whole offered workload (arrival times *and* the
  query sequence) is a pure function of ``(seed, rate, duration)``
  via :func:`repro.rng.derive_rng`.  Two runs with the same seed offer
  byte-identical traffic, so a latency regression between two builds is
  the service's fault, not the harness's.

The query mix is zipf-skewed over the catalog the way longitudinal
conflict monitoring actually queries: the coarse headline / catalog /
figure-1-style summaries dominate (everyone re-asks "what changed?"),
the live change-event page and named series over the invasion window
sit in the shoulder, and domain-level record pages — including ``.рф``
via its ``xn--p1ai`` punycode A-label — form the tail.

Results are written as ``BENCH_service_load.json`` so CI can gate on
error rate and p99 against a floor (see the ``service-load`` job).
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from .errors import ReproError
from .rng import derive_rng

__all__ = [
    "LoadSample",
    "LoadPlan",
    "default_mix",
    "build_plan",
    "percentile",
    "summarise",
    "run_loadgen",
]

#: Zipf skew of the query mix: weight of rank ``r`` is ``1/(r+1)**S``.
ZIPF_EXPONENT = 1.1

#: Envelope keys every 200 body must carry to count as well-formed.
ENVELOPE_KEYS = ("schema_version", "kind", "spec", "data")

#: The event-feed page (``/v1/events``) has its own envelope.
EVENTS_ENVELOPE_KEYS = ("schema_version", "since", "next", "events")


def default_mix() -> List[Tuple[str, str]]:
    """The ``(label, GET path)`` catalog, ordered hot → cold.

    Rank order is the zipf rank: the headline summary is what a
    monitoring dashboard polls, so it gets the most traffic; paged
    domain-level records (the ``.рф`` punycode variant included) are
    the long tail.
    """
    return [
        ("headline", "/v1/headline"),
        ("catalog", "/v1/experiments"),
        ("experiment:headline", "/v1/experiments/headline"),
        ("series:tld_composition", "/v1/series/tld_composition"),
        (
            "series:ns_composition:window",
            "/v1/series/ns_composition?start=2022-02-01&end=2022-04-30",
        ),
        (
            "series:asn_shares:window",
            "/v1/series/asn_shares?start=2022-03-01&end=2022-03-15",
        ),
        ("events:page", "/v1/events?since=0&limit=50"),
        ("experiment:fig1", "/v1/experiments/fig1"),
        (
            "series:sanctioned_composition",
            "/v1/series/sanctioned_composition",
        ),
        ("records:ru", "/v1/records/2022-03-04?tld=ru&limit=20"),
        (
            "records:rf-punycode",
            "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=20",
        ),
        ("records:ru:page2", "/v1/records/2022-03-10?tld=ru&offset=20&limit=20"),
        ("records:xn--p1ai", "/v1/records/2022-03-10?tld=xn--p1ai&limit=20"),
    ]


class LoadSample:
    """One completed request: what was asked, when, and what came back."""

    __slots__ = (
        "label", "path", "offset", "latency", "status", "stale", "malformed",
    )

    def __init__(
        self,
        label: str,
        path: str,
        offset: float,
        latency: float,
        status: int,
        stale: bool,
        malformed: bool,
    ) -> None:
        self.label = label
        self.path = path
        #: Scheduled start, seconds from run start.
        self.offset = offset
        self.latency = latency
        #: HTTP status; 0 means the transport failed.
        self.status = status
        self.stale = stale
        self.malformed = malformed


class LoadPlan:
    """A fully materialised offered workload (arrivals + queries)."""

    __slots__ = ("seed", "rate", "duration", "arrivals", "labels", "paths")

    def __init__(
        self,
        seed: int,
        rate: float,
        duration: float,
        arrivals: Sequence[float],
        labels: Sequence[str],
        paths: Sequence[str],
    ) -> None:
        self.seed = seed
        self.rate = rate
        self.duration = duration
        self.arrivals = list(arrivals)
        self.labels = list(labels)
        self.paths = list(paths)

    def __len__(self) -> int:
        return len(self.arrivals)


def build_plan(
    seed: int,
    rate: float,
    duration: float,
    mix: Optional[List[Tuple[str, str]]] = None,
) -> LoadPlan:
    """Materialise the workload: pure in ``(seed, rate, duration, mix)``.

    Arrival times are the cumulative sum of exponential interarrivals at
    ``rate`` per second (a Poisson process), truncated at ``duration``;
    the query for each arrival is an independent zipf-weighted draw from
    ``mix``.  Both streams come from :func:`derive_rng` with distinct
    labels, so adding queries to the mix cannot shift the arrival times.
    """
    if rate <= 0:
        raise ReproError(f"loadgen rate must be > 0 qps: {rate}")
    if duration <= 0:
        raise ReproError(f"loadgen duration must be > 0 seconds: {duration}")
    chosen = mix if mix is not None else default_mix()
    if not chosen:
        raise ReproError("loadgen query mix is empty")

    arrival_rng = derive_rng(seed, "loadgen", "arrivals")
    arrivals: List[float] = []
    at = 0.0
    # Draw in blocks: the count is itself load-dependent, but each draw
    # consumes the stream in order, so the sequence stays seed-pure.
    while True:
        for gap in arrival_rng.exponential(1.0 / rate, size=256):
            at += float(gap)
            if at >= duration:
                break
            arrivals.append(at)
        else:
            continue
        break

    weights = [1.0 / float(rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(chosen))]
    total = sum(weights)
    probabilities = [weight / total for weight in weights]
    mix_rng = derive_rng(seed, "loadgen", "mix")
    picks = mix_rng.choice(len(chosen), size=max(1, len(arrivals)),
                           p=probabilities)

    labels = [chosen[int(pick)][0] for pick in picks[: len(arrivals)]]
    paths = [chosen[int(pick)][1] for pick in picks[: len(arrivals)]]
    return LoadPlan(seed, rate, duration, arrivals, labels, paths)


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (None if empty)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# Execution (asyncio, raw HTTP/1.1, one connection per request)
# ----------------------------------------------------------------------

def _parse_url(url: str) -> Tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"//{url}")
    if parts.scheme not in ("", "http"):
        raise ReproError(f"only http:// service URLs are supported: {url}")
    if not parts.hostname:
        raise ReproError(f"service URL has no host: {url!r}")
    return parts.hostname, parts.port or 80


async def _one_request(
    host: str, port: int, path: str, timeout: float
) -> Tuple[int, bool, bool]:
    """``(status, stale, malformed)`` for one GET; status 0 = transport."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        return 0, False, False
    try:
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    except (OSError, asyncio.TimeoutError):
        return 0, False, False
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    head, separator, body = raw.partition(b"\r\n\r\n")
    if not separator:
        return 0, False, True
    try:
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(maxsplit=2)[1])
    except (IndexError, ValueError):
        return 0, False, True
    stale = any(
        line.lower().startswith("x-repro-stale:")
        and line.split(":", 1)[1].strip().lower() == "true"
        for line in lines[1:]
    )
    malformed = False
    if status == 200:
        expected = (
            EVENTS_ENVELOPE_KEYS
            if path.startswith("/v1/events")
            else ENVELOPE_KEYS
        )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            malformed = True
        else:
            malformed = not (
                isinstance(payload, dict)
                and all(key in payload for key in expected)
            )
    return status, stale, malformed


async def _run_plan(
    plan: LoadPlan, url: str, timeout: float
) -> List[LoadSample]:
    host, port = _parse_url(url)
    started = time.perf_counter()
    samples: List[LoadSample] = []

    async def fire(index: int) -> None:
        offset = plan.arrivals[index]
        delay = offset - (time.perf_counter() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        begun = time.perf_counter()
        status, stale, malformed = await _one_request(
            host, port, plan.paths[index], timeout
        )
        samples.append(
            LoadSample(
                label=plan.labels[index],
                path=plan.paths[index],
                offset=offset,
                latency=time.perf_counter() - begun,
                status=status,
                stale=stale,
                malformed=malformed,
            )
        )

    await asyncio.gather(*(fire(index) for index in range(len(plan))))
    return samples


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def summarise(
    plan: LoadPlan, samples: List[LoadSample], url: str, wall_seconds: float
) -> Dict[str, object]:
    """The ``BENCH_service_load.json`` payload."""
    completed = [sample for sample in samples if sample.status == 200]
    errors = [sample for sample in samples if sample.status != 200]
    stale = [sample for sample in completed if sample.stale]
    malformed = [sample for sample in samples if sample.malformed]
    latencies = sorted(sample.latency for sample in completed)
    sent = len(samples)

    by_label: Dict[str, int] = {}
    for label in plan.labels:
        by_label[label] = by_label.get(label, 0) + 1

    def _ms(value: Optional[float]) -> Optional[float]:
        return None if value is None else round(value * 1000.0, 3)

    return {
        "harness": "repro-loadgen",
        "url": url,
        "seed": plan.seed,
        "offered_rate_qps": plan.rate,
        "duration_seconds": plan.duration,
        "wall_seconds": round(wall_seconds, 3),
        "requests_sent": sent,
        "requests_ok": len(completed),
        "requests_errored": len(errors),
        "error_rate": round(len(errors) / sent, 6) if sent else 0.0,
        "stale_served": len(stale),
        "stale_rate": (
            round(len(stale) / len(completed), 6) if completed else 0.0
        ),
        "malformed": len(malformed),
        "throughput_qps": (
            round(len(completed) / wall_seconds, 2) if wall_seconds > 0 else 0.0
        ),
        "latency_ms": {
            "p50": _ms(percentile(latencies, 50.0)),
            "p95": _ms(percentile(latencies, 95.0)),
            "p99": _ms(percentile(latencies, 99.0)),
            "max": _ms(latencies[-1] if latencies else None),
        },
        "query_mix": by_label,
        "errors_by_status": _count_by(
            (str(sample.status) for sample in errors)
        ),
    }


def _count_by(values) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return counts


def run_loadgen(
    url: str,
    rate: float,
    duration: float,
    seed: int = 0,
    timeout: float = 30.0,
    output: Optional[str] = "BENCH_service_load.json",
    mix: Optional[List[Tuple[str, str]]] = None,
) -> Dict[str, object]:
    """Offer the planned load to ``url`` and return (and write) the report."""
    plan = build_plan(seed, rate, duration, mix=mix)
    started = time.perf_counter()
    samples = asyncio.run(_run_plan(plan, url, timeout))
    wall = time.perf_counter() - started
    report = summarise(plan, samples, url, wall)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def main_report(report: Dict[str, object], stream=sys.stdout) -> None:
    """Human-readable one-screen summary (the CLI prints this)."""
    latency = report["latency_ms"]
    print(
        f"sent {report['requests_sent']} requests in "
        f"{report['wall_seconds']}s "
        f"(offered {report['offered_rate_qps']} qps, "
        f"achieved {report['throughput_qps']} qps)",
        file=stream,
    )
    print(
        f"ok {report['requests_ok']}  errors {report['requests_errored']} "
        f"(rate {report['error_rate']})  stale {report['stale_served']}  "
        f"malformed {report['malformed']}",
        file=stream,
    )
    print(
        f"latency p50 {latency['p50']}ms  p95 {latency['p95']}ms  "
        f"p99 {latency['p99']}ms  max {latency['max']}ms",
        file=stream,
    )
