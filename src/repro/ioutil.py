"""Crash-safe file IO shared by the archive writers.

Every durable file the pipeline produces (day shards, manifests) goes
through :func:`atomic_write_bytes`: bytes land in a same-directory temp
file that is renamed over the final name with ``os.replace``, so an
interrupted or faulted write can never leave a torn file behind a name
that passes existence checks.  Transient failures (including injected
ones) are retried with bounded exponential backoff, and when a fault
plan is active every write is read back and compared before the rename
— which is what turns injected byte corruption into a retry instead of
a poisoned archive.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from .errors import ArchiveError, RecoveryError

__all__ = ["atomic_write_bytes", "backoff_seconds"]

#: Longest single retry sleep, seconds (keeps tests and CI snappy).
_BACKOFF_CAP = 0.25


def backoff_seconds(attempt: int, base: float) -> float:
    """Bounded exponential backoff for retry attempt ``attempt`` (0-based)."""
    return min(base * (2 ** attempt), _BACKOFF_CAP)


def atomic_write_bytes(
    path: str,
    data: bytes,
    faults=None,
    site: str = "io.write",
    retries: int = 6,
    backoff: float = 0.01,
) -> int:
    """Atomically write ``data`` to ``path``; returns retries used.

    ``site`` names the fault-injection site (see
    :mod:`repro.faults.plan`); the per-attempt key is
    ``"<basename>#<attempt>"`` so a retry re-rolls the fault decision.
    When a plan is attached, the temp file is read back and compared to
    ``data`` before the rename, catching injected (or real) corruption
    while the final name still holds the previous good version.
    """
    name = os.path.basename(path)
    temp_path = f"{path}.tmp.{os.getpid()}"
    for attempt in range(retries + 1):
        key = f"{name}#{attempt}"
        try:
            payload = data
            if faults is not None:
                payload = faults.corrupt_bytes(f"{site}.bytes", key, data)
            try:
                with open(temp_path, "wb") as handle:
                    if faults is not None:
                        # Split the write so an injected error mid-way
                        # leaves a *torn temp file*, never a torn final.
                        handle.write(payload[: len(payload) // 2])
                        faults.check(site, key)
                        handle.write(payload[len(payload) // 2:])
                    else:
                        handle.write(payload)
                if faults is not None:
                    with open(temp_path, "rb") as handle:
                        written = handle.read()
                    if written != data:
                        raise ArchiveError(
                            f"read-back verify failed for {path} "
                            f"(attempt {attempt})"
                        )
                os.replace(temp_path, path)
            finally:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
            return attempt
        except (OSError, ArchiveError) as exc:
            if attempt >= retries:
                raise RecoveryError(
                    f"could not write {path} after {retries + 1} attempts: {exc}"
                ) from exc
            time.sleep(backoff_seconds(attempt, backoff))
    raise AssertionError("unreachable")  # pragma: no cover
